"""Conflict-driven clause-learning (CDCL) SAT solver.

A from-scratch MiniSat-lineage solver providing the proof engine for the
model checker.  Features: two-watched-literal propagation with blocker
literals, VSIDS variable activity on an indexed binary heap with phase
saving, first-UIP clause learning with self-subsumption minimization,
Luby restarts, and glue-(LBD-)aware learnt clause database reduction
with lazy deletion plus arena garbage collection.  The public interface
is incremental in the "fresh clauses + solve under assumptions" style:

>>> s = Solver()
>>> a, b = s.add_var(), s.add_var()
>>> s.add_clause([a, b])
>>> s.solve(assumptions=[-a])
True
>>> s.model_value(b)
True

Literals use DIMACS conventions externally (nonzero ints, negative =
negated) and an internal packed encoding (``var << 1 | sign``).

Data layout (the solve hot path)
--------------------------------

Clauses live in one flat integer arena (``_ca``) instead of per-clause
objects: a clause is just an offset ``cref`` with the layout
``[size, lbd, lit0, lit1, ...]``, so the propagation loop reads
literals with plain integer indexing and zero attribute lookups.  Watch
lists are flat interleaved ``[cref, blocker, cref, blocker, ...]``
lists: the *blocker* is a literal of the clause (usually the other
watched literal) whose truth lets propagation skip the clause without
touching the arena at all.  Assignment state is a *literal-indexed*
value array (``_lv[lit]`` is 1/-1/0 for true/false/unassigned), so the
hot loop's truth test is a single list index instead of the
``assigns[lit >> 1] == (lit & 1) ^ 1`` shift/mask/xor dance — at the
price of two writes per (much rarer) assignment.  Binary clauses take a
dedicated fast path: their blocker is always the other literal, so unit
propagation and conflict detection read nothing from the arena and
never move the watch entry.  Deleting a clause flips its size slot
negative — an O(1) mark that propagation sweeps drop lazily — and the
arena is compacted (crefs remapped, watches rebuilt) once a third of it
is dead.  ``array('l')`` was benchmarked for the arena and the watch
lists and rejected: on CPython its write path (``__setitem__`` plus
boxing every read) loses ~15% against flat lists of small ints, which
the interpreter caches.

The VSIDS order is an indexed binary max-heap (`_heap` of vars plus a
`_hpos` position array): activity bumps sift in place (decrease-key)
and unassignment re-inserts, so there are no stale entries and no
rebuild-from-scratch scans.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.errors import SatError
from repro.obs import metrics as _metrics

_UNDEF = 2

# Solver-effort metrics, batched at solve_limited boundaries: the inner
# propagation loop never sees an instrument.  Each solver keeps a
# last-published snapshot of its cumulative SatStats and pushes the
# delta (which also picks up level-0 BCP done by add_clause between
# solves) into these process-wide counters — one guard branch and a
# handful of adds per solve call, which is what keeps the E10
# obs_metrics_on/off overhead inside the <5% contract.
_M_SOLVES = _metrics.counter(
    "repro_solver_solves_total", "solve_limited calls")
_M_PROPAGATIONS = _metrics.counter(
    "repro_solver_propagations_total", "unit propagations executed")
_M_CONFLICTS = _metrics.counter(
    "repro_solver_conflicts_total", "conflicts analyzed")
_M_DECISIONS = _metrics.counter(
    "repro_solver_decisions_total", "decisions made")
_M_SOLVE_SECONDS = _metrics.counter(
    "repro_solver_solve_seconds_total", "wall seconds inside the solver")


@dataclass
class SatStats:
    """Cumulative search statistics (monotone across solve() calls)."""

    decisions: int = 0
    propagations: int = 0
    conflicts: int = 0
    restarts: int = 0
    learned: int = 0
    learned_literals: int = 0
    db_reductions: int = 0
    max_vars: int = 0
    clauses_added: int = 0
    #: Wall time spent inside ``solve_limited`` — the denominator for
    #: the propagations/sec figures the perf-regression harness tracks.
    solve_seconds: float = 0.0

    def snapshot(self) -> dict[str, int]:
        return dict(self.__dict__)


def _lit(internal_var: int, negative: bool) -> int:
    return internal_var << 1 | int(negative)


class Solver:
    """Incremental CDCL solver."""

    def __init__(self, restart_base: int = 100,
                 var_decay: float = 0.95, clause_decay: float = 0.999):
        self._nvars = 0
        # Clause arena: [size, lbd, lit0, lit1, ...] per clause; a
        # negative size marks a deleted clause (lazily swept).  lbd is 0
        # for problem clauses and >= 1 for learnts, doubling as the
        # learnt flag.
        self._ca: list[int] = []
        self._clauses: list[int] = []       # problem clause crefs
        self._learnts: list[int] = []       # learnt clause crefs
        self._cact: dict[int, float] = {}   # learnt clause activity
        self._wasted = 0                    # dead arena slots
        # Flat watch lists: [cref, blocker, ...] per literal.  Binary
        # clauses live in their own lists ([cref, other, ...]): their
        # watches never move, so propagation walks them with zero
        # compaction bookkeeping and never touches the arena.
        self._watches: list[list[int]] = [[], []]
        self._bwatches: list[list[int]] = [[], []]
        # Literal-indexed values: 1 true, -1 false, 0 unassigned.
        self._lv: list[int] = [0, 0]
        self._level: list[int] = [0]
        self._reason: list[int] = [-1]       # cref or -1
        self._activity: list[float] = [0.0]
        self._phase: list[int] = [0]
        self._trail: list[int] = []
        self._trail_lim: list[int] = []
        self._qhead = 0
        self._ok = True
        self._var_inc = 1.0
        self._var_decay = var_decay
        self._cla_inc = 1.0
        self._cla_decay = clause_decay
        self._restart_base = restart_base
        self._max_learnts = 2000.0
        self._learnt_growth = 1.3
        # Indexed VSIDS max-heap: _heap holds vars, _hpos[v] is v's
        # position in _heap or -1.
        self._heap: list[int] = []
        self._hpos: list[int] = [-1]
        self._seen: list[int] = [0]
        self._conflict_limit: int | None = None
        self.stats = SatStats()
        # (propagations, conflicts, decisions, solve_seconds) already
        # published to the process-wide metrics counters.
        self._published = (0, 0, 0, 0.0)
        self._model: list[int] = []

    # ------------------------------------------------------------------
    # Problem construction
    # ------------------------------------------------------------------

    def add_var(self) -> int:
        """Allocate a fresh variable; returns its (positive) DIMACS index."""
        self._nvars += 1
        self._lv.extend((0, 0))
        self._level.append(0)
        self._reason.append(-1)
        self._activity.append(0.0)
        self._phase.append(0)
        self._seen.append(0)
        self._hpos.append(-1)
        self._watches.append([])
        self._watches.append([])
        self._bwatches.append([])
        self._bwatches.append([])
        self.stats.max_vars = self._nvars
        self._heap_insert(self._nvars)
        return self._nvars

    def num_vars(self) -> int:
        return self._nvars

    def add_clause(self, dimacs_lits: list[int]) -> bool:
        """Add a clause; returns False if the formula is now trivially UNSAT.

        Clauses may only be added at decision level 0 (i.e. not from inside
        a model callback); the incremental style supported here is
        "add clauses between solve() calls".
        """
        if self._trail_lim:
            raise SatError("add_clause called while search is in progress")
        if not self._ok:
            return False
        self.stats.clauses_added += 1
        lits = []
        seen_pos: set[int] = set()
        for d in dimacs_lits:
            lit = self._from_dimacs(d)
            value = self._value(lit)
            if value == 1 or (lit ^ 1) in seen_pos:
                return True  # satisfied or tautological at level 0
            if value == 0 or lit in seen_pos:
                continue  # falsified or duplicate literal
            seen_pos.add(lit)
            lits.append(lit)
        if not lits:
            self._ok = False
            return False
        if len(lits) == 1:
            if not self._enqueue(lits[0], -1):
                self._ok = False
                return False
            # Level-0 BCP is solver work (BMC encodings are unit-heavy),
            # so it counts toward solve_seconds like in-search BCP does.
            started = time.perf_counter()
            self._ok = self._propagate() < 0
            self.stats.solve_seconds += time.perf_counter() - started
            return self._ok
        cref = self._alloc(lits, lbd=0)
        self._attach(cref)
        self._clauses.append(cref)
        return True

    # ------------------------------------------------------------------
    # Solving
    # ------------------------------------------------------------------

    def solve(self, assumptions: list[int] | None = None) -> bool:
        """Search for a model extending ``assumptions`` (DIMACS literals)."""
        result = self.solve_limited(assumptions)
        if result is None:  # pragma: no cover - only with budgets
            raise SatError("solve() without budget cannot be indeterminate")
        return result

    def solve_limited(self, assumptions: list[int] | None = None,
                      conflict_budget: int | None = None) -> bool | None:
        """Budgeted solve: returns None when the conflict budget runs out.

        Used for best-effort probes (e.g. the repair flow's bug check)
        where an inconclusive answer is acceptable and bounded latency
        matters more than completeness.

        The budget is **exact**: a budget of N admits at most N counted
        (and fully analyzed) conflicts; hitting conflict N+1 returns
        None without counting it, so ``stats.conflicts`` grows by
        exactly N on an indeterminate solve and by at most N otherwise.
        A non-positive budget still permits conflict-free solves.
        """
        if not self._ok:
            return False
        # Inline DIMACS conversion: assumption lists are long on the
        # PDR/k-induction paths and a per-literal call is measurable.
        nv = self._nvars
        assumed = []
        for d in assumptions or ():
            v = -d if d < 0 else d
            if v == 0:
                raise SatError("literal 0 is not valid")
            if v > nv:
                raise SatError(f"assumption over unknown variable {v}")
            assumed.append(v << 1 | (d < 0))
        self._conflict_limit = None if conflict_budget is None else \
            self.stats.conflicts + max(conflict_budget, 0)
        started = time.perf_counter()
        result = self._search(assumed)
        self.stats.solve_seconds += time.perf_counter() - started
        if _metrics.metrics_enabled():
            st = self.stats
            last = self._published
            _M_SOLVES.inc()
            _M_PROPAGATIONS.inc(st.propagations - last[0])
            _M_CONFLICTS.inc(st.conflicts - last[1])
            _M_DECISIONS.inc(st.decisions - last[2])
            _M_SOLVE_SECONDS.inc(st.solve_seconds - last[3])
            self._published = (st.propagations, st.conflicts,
                               st.decisions, st.solve_seconds)
        self._conflict_limit = None
        self._cancel_until(0)
        if result is not True:
            # Drop any model from an earlier SAT call: callers that read
            # model values after an UNSAT/indeterminate solve must fail
            # loudly, not silently consume a stale assignment.  PDR's
            # cube extraction depends on this.
            self._model = []
        return result

    def model_value(self, var: int) -> bool:
        """Value of ``var`` in the most recent satisfying model.

        Only valid while the most recent ``solve``/``solve_limited``
        returned True; any other outcome invalidates the model.
        """
        if not self._model:
            raise SatError("no model available (last solve returned False?)")
        if not (1 <= var <= self._nvars):
            raise SatError(f"variable {var} out of range")
        return self._model[var << 1] > 0

    def model(self) -> list[int]:
        """The model as a list of DIMACS literals."""
        model = self._model
        return [v if model[v << 1] > 0 else -v
                for v in range(1, self._nvars + 1)]

    # ------------------------------------------------------------------
    # Core search
    # ------------------------------------------------------------------

    def _search(self, assumptions: list[int]) -> bool | None:
        conflicts_until_restart = self._luby_limit()
        stats = self.stats
        while True:
            confl = self._propagate()
            if confl >= 0:
                limit = self._conflict_limit
                if limit is not None and stats.conflicts >= limit:
                    return None     # budget spent before this conflict
                stats.conflicts += 1
                if not self._trail_lim:
                    self._ok = False
                    return False
                if len(self._trail_lim) <= len(assumptions):
                    # The conflict is forced by the assumptions alone.
                    return False
                learnt, bt_level = self._analyze(confl)
                self._cancel_until(bt_level)
                self._record_learnt(learnt)
                self._var_inc /= self._var_decay
                self._cla_inc /= self._cla_decay
                if len(self._learnts) >= self._max_learnts:
                    self._reduce_db()
                conflicts_until_restart -= 1
                continue
            if conflicts_until_restart <= 0 and \
                    len(self._trail_lim) > len(assumptions):
                stats.restarts += 1
                self._cancel_until(len(assumptions))
                conflicts_until_restart = self._luby_limit()
                continue
            # Extend assumptions first, then decide.
            level = len(self._trail_lim)
            if level < len(assumptions):
                lit = assumptions[level]
                value = self._lv[lit]
                if value > 0:
                    self._trail_lim.append(len(self._trail))
                    continue
                if value < 0:
                    return False
                self._trail_lim.append(len(self._trail))
                self._enqueue(lit, -1)
                continue
            lit = self._pick_branch()
            if lit is None:
                # C-speed snapshot of the literal-value array; the
                # model accessors index it by literal.
                self._model = self._lv[:]
                return True
            stats.decisions += 1
            self._trail_lim.append(len(self._trail))
            self._enqueue(lit, -1)

    def _propagate(self) -> int:
        """Two-watched-literal BCP; returns the conflicting cref or -1.

        The hottest loop in the system: everything is a local, literal
        truth is one index into the literal-value array (``lv[lit] > 0``
        is "true", ``< 0`` is "false"), blockers short-circuit satisfied
        clauses, binary clauses resolve against the blocker without
        touching the arena, and watch lists compact in place.
        """
        trail = self._trail
        lv = self._lv
        level = self._level
        reason = self._reason
        phase = self._phase
        watches = self._watches
        bwatches = self._bwatches
        ca = self._ca
        qhead = self._qhead
        dl = len(self._trail_lim)
        nt = len(trail)
        props = 0
        confl = -1
        while qhead < nt:
            p = trail[qhead]
            qhead += 1
            props += 1
            bwl = bwatches[p]
            if bwl:
                # Binary sweep: entries are (cref, other-literal) pairs
                # that never move — no arena reads, no compaction.
                bi = 0
                bn = len(bwl)
                while bi < bn:
                    other = bwl[bi + 1]
                    bi += 2
                    bv = lv[other]
                    if bv > 0:
                        continue
                    if bv < 0:              # other literal false: conflict
                        qhead = nt
                        confl = bwl[bi - 2]
                        break
                    lv[other] = 1           # unit: enqueue the other
                    lv[other ^ 1] = -1
                    v = other >> 1
                    phase[v] = (other & 1) ^ 1
                    level[v] = dl
                    reason[v] = bwl[bi - 2]
                    trail.append(other)
                    nt += 1
                if confl >= 0:
                    break
            wl = watches[p]
            if not wl:
                continue
            fl = p ^ 1          # the literal this assignment falsified
            i = j = 0
            n = len(wl)
            while i < n:
                blocker = wl[i + 1]
                bv = lv[blocker]
                if bv > 0:      # blocker true: clause satisfied
                    if j != i:
                        wl[j] = wl[i]
                        wl[j + 1] = blocker
                    i += 2
                    j += 2
                    continue
                c = wl[i]
                i += 2
                size = ca[c]
                if size < 0:
                    continue    # deleted clause: drop the entry
                base = c + 2
                l0 = ca[base]
                if l0 == fl:    # normalize: falsified literal at slot 1
                    l0 = ca[base + 1]
                    ca[base] = l0
                    ca[base + 1] = fl
                av = lv[l0]
                if av > 0:      # first watch true: satisfied
                    wl[j] = c
                    wl[j + 1] = l0
                    j += 2
                    continue
                end = base + size
                k = base + 2
                moved = False
                while k < end:
                    lk = ca[k]
                    if lv[lk] >= 0:          # not false: new watch
                        ca[base + 1] = lk
                        ca[k] = fl
                        wlk = watches[lk ^ 1]
                        wlk.append(c)
                        wlk.append(l0)
                        moved = True
                        break
                    k += 1
                if moved:
                    continue
                wl[j] = c
                wl[j + 1] = l0
                j += 2
                if av < 0:                  # first watch false: conflict
                    while i < n:
                        wl[j] = wl[i]
                        wl[j + 1] = wl[i + 1]
                        i += 2
                        j += 2
                    qhead = nt
                    confl = c
                    break
                lv[l0] = 1                   # unit: enqueue inline
                lv[l0 ^ 1] = -1
                v = l0 >> 1
                phase[v] = (l0 & 1) ^ 1
                level[v] = dl
                reason[v] = c
                trail.append(l0)
                nt += 1
            if j != n:
                del wl[j:]
            if confl >= 0:
                break
        self._qhead = qhead
        self.stats.propagations += props
        return confl

    def _analyze(self, confl: int) -> tuple[list[int], int]:
        """First-UIP learning; returns (learnt clause lits, backtrack level)."""
        ca = self._ca
        seen = self._seen
        levels = self._level
        trail = self._trail
        reason = self._reason
        act = self._activity
        var_inc = self._var_inc
        dl = len(self._trail_lim)
        learnt: list[int] = [0]  # placeholder for the asserting literal
        to_clear: list[int] = []
        counter = 0
        p = -1
        index = len(trail) - 1
        c = confl
        while True:
            if ca[c + 1]:        # learnt clause (lbd >= 1): bump it
                self._bump_clause(c)
            base = c + 2
            start = base + 1 if p != -1 and ca[base] == p else base
            for k in range(start, base + ca[c]):
                q = ca[k]
                if q == p:
                    # Binary clauses skip slot normalization in the
                    # propagation fast path, so the asserting literal
                    # may sit anywhere in its reason: skip it by value.
                    continue
                v = q >> 1
                if not seen[v] and levels[v] > 0:
                    seen[v] = 1
                    to_clear.append(v)
                    act[v] += var_inc   # bump inline; heap fixed below
                    if levels[v] >= dl:
                        counter += 1
                    else:
                        learnt.append(q)
            while not seen[trail[index] >> 1]:
                index -= 1
            p = trail[index]
            v = p >> 1
            index -= 1
            seen[v] = 0
            counter -= 1
            if counter == 0:
                break
            c = reason[v]
        learnt[0] = p ^ 1
        self._minimize(learnt)
        # Compute backtrack level: the second-highest level in the clause.
        if len(learnt) == 1:
            bt_level = 0
        else:
            max_index = 1
            for i in range(2, len(learnt)):
                if levels[learnt[i] >> 1] > levels[learnt[max_index] >> 1]:
                    max_index = i
            learnt[1], learnt[max_index] = learnt[max_index], learnt[1]
            bt_level = levels[learnt[1] >> 1]
        hpos = self._hpos
        rescale = False
        for v in to_clear:
            seen[v] = 0
            if act[v] > 1e100:
                rescale = True
            if hpos[v] >= 0:    # deferred decrease-key for inline bumps
                self._sift_up(hpos[v])
        if rescale:
            for u in range(1, self._nvars + 1):
                act[u] *= 1e-100
            self._var_inc *= 1e-100
        return learnt, bt_level

    def _minimize(self, learnt: list[int]) -> None:
        """Drop literals implied by the rest of the clause (self-subsumption).

        A literal can be removed if its reason's literals are all already in
        the clause (marked seen).  This is MiniSat's 'basic' minimization.
        """
        ca = self._ca
        seen = self._seen
        levels = self._level
        reason = self._reason
        kept = [learnt[0]]
        for lit in learnt[1:]:
            r = reason[lit >> 1]
            if r < 0:
                kept.append(lit)
                continue
            removable = True
            base = r + 2
            for k in range(base, base + ca[r]):
                q = ca[k]
                v = q >> 1
                if q != lit ^ 1 and not seen[v] and levels[v] > 0:
                    removable = False
                    break
            if not removable:
                kept.append(lit)
        learnt[:] = kept

    def _record_learnt(self, learnt: list[int]) -> None:
        self.stats.learned += 1
        self.stats.learned_literals += len(learnt)
        if len(learnt) == 1:
            self._enqueue(learnt[0], -1)
            return
        levels = self._level
        lbd = len({levels[lit >> 1] for lit in learnt})
        cref = self._alloc(learnt, lbd=max(lbd, 1))
        self._bump_clause(cref)
        self._attach(cref)
        self._learnts.append(cref)
        self._enqueue(learnt[0], cref)

    def _reduce_db(self) -> None:
        """Remove the worse half of learnt clauses (high LBD, low activity).

        Deletion is O(1) per clause — the arena size slot flips negative
        and propagation sweeps drop dead watch entries lazily; no watch
        list is ever scanned here.  The arena is compacted once a third
        of it is dead.
        """
        self.stats.db_reductions += 1
        self._max_learnts *= self._learnt_growth
        ca = self._ca
        cact = self._cact
        reason = self._reason
        locked = {r for r in (reason[v] for v in range(1, self._nvars + 1))
                  if r >= 0}
        learnts = self._learnts
        learnts.sort(key=lambda c: (-ca[c + 1], cact.get(c, 0.0)))
        keep_from = len(learnts) // 2
        kept: list[int] = []
        for i, c in enumerate(learnts):
            if c in locked or ca[c] == 2 or ca[c + 1] <= 2 or i >= keep_from:
                kept.append(c)
            else:
                self._delete(c)
        self._learnts = kept
        if self._wasted * 3 > len(ca):
            self._collect_garbage()

    # ------------------------------------------------------------------
    # Clause arena
    # ------------------------------------------------------------------

    def _alloc(self, lits: list[int], lbd: int) -> int:
        ca = self._ca
        cref = len(ca)
        ca.append(len(lits))
        ca.append(lbd)
        ca.extend(lits)
        return cref

    def _attach(self, cref: int) -> None:
        ca = self._ca
        l0, l1 = ca[cref + 2], ca[cref + 3]
        watches = self._bwatches if ca[cref] == 2 else self._watches
        watches[l0 ^ 1].extend((cref, l1))
        watches[l1 ^ 1].extend((cref, l0))

    def _detach(self, cref: int) -> None:
        """Eagerly remove ``cref`` from its two watch lists and delete it.

        A detach that cannot find its watch entry means the watch lists
        no longer reflect the clause database — corruption that would
        otherwise surface as silently wrong verdicts — so it raises
        :class:`SatError` instead of passing.  (The reduction path never
        calls this: it marks clauses dead in O(1) and lets propagation
        sweeps drop the entries.)
        """
        ca = self._ca
        if ca[cref] < 0:
            raise SatError(
                f"detach of already-deleted clause at {cref}: "
                "watch-list corruption")
        watches = self._bwatches if ca[cref] == 2 else self._watches
        for which in (0, 1):
            lit = ca[cref + 2 + which]
            wl = watches[lit ^ 1]
            for i in range(0, len(wl), 2):
                if wl[i] == cref:
                    wl[i] = wl[-2]
                    wl[i + 1] = wl[-1]
                    del wl[-2:]
                    break
            else:
                raise SatError(
                    f"clause at {cref} missing from the watch list of "
                    f"literal {lit ^ 1}: watch-list corruption")
        self._delete(cref)

    def _delete(self, cref: int) -> None:
        """O(1) deletion: negate the size slot; sweeps drop the watches."""
        ca = self._ca
        size = ca[cref]
        ca[cref] = -size
        self._wasted += size + 2
        self._cact.pop(cref, None)

    def _collect_garbage(self) -> None:
        """Compact the arena: copy live clauses, remap crefs, rebuild
        watches.  Watched literals are preserved verbatim (slots 0/1),
        so the two-watched invariant survives mid-search compaction."""
        old = self._ca
        new: list[int] = []
        mapping: dict[int, int] = {}

        def move(refs: list[int]) -> list[int]:
            out = []
            for c in refs:
                nc = len(new)
                mapping[c] = nc
                out.append(nc)
                new.extend(old[c:c + 2 + old[c]])
            return out

        self._clauses = move(self._clauses)
        self._learnts = move(self._learnts)
        self._cact = {mapping[c]: a for c, a in self._cact.items()}
        reason = self._reason
        for v in range(1, self._nvars + 1):
            r = reason[v]
            if r >= 0:
                reason[v] = mapping[r]
        self._ca = new
        watches = self._watches
        bwatches = self._bwatches
        for wl in watches:
            del wl[:]
        for wl in bwatches:
            del wl[:]
        for c in self._clauses + self._learnts:
            target = bwatches if new[c] == 2 else watches
            target[new[c + 2] ^ 1].extend((c, new[c + 3]))
            target[new[c + 3] ^ 1].extend((c, new[c + 2]))
        self._wasted = 0

    # ------------------------------------------------------------------
    # Assignment bookkeeping
    # ------------------------------------------------------------------

    def _enqueue(self, lit: int, reason: int) -> bool:
        lv = self._lv
        a = lv[lit]
        if a:
            return a > 0
        lv[lit] = 1
        lv[lit ^ 1] = -1
        v = lit >> 1
        self._phase[v] = (lit & 1) ^ 1
        self._level[v] = len(self._trail_lim)
        self._reason[v] = reason
        self._trail.append(lit)
        return True

    def _cancel_until(self, level: int) -> None:
        if len(self._trail_lim) <= level:
            return
        bound = self._trail_lim[level]
        lv = self._lv
        reason = self._reason
        hpos = self._hpos
        heap = self._heap
        act = self._activity
        trail = self._trail
        for idx in range(len(trail) - 1, bound - 1, -1):
            lit = trail[idx]
            lv[lit] = 0
            lv[lit ^ 1] = 0
            v = lit >> 1
            reason[v] = -1
            if hpos[v] < 0:      # re-insert, sift-up inlined (hot path)
                i = len(heap)
                heap.append(v)
                a = act[v]
                while i > 0:
                    parent = (i - 1) >> 1
                    pv = heap[parent]
                    if act[pv] >= a:
                        break
                    heap[i] = pv
                    hpos[pv] = i
                    i = parent
                heap[i] = v
                hpos[v] = i
        del trail[bound:]
        del self._trail_lim[level:]
        self._qhead = len(trail)

    def _decision_level(self) -> int:
        return len(self._trail_lim)

    def _value(self, lit: int) -> int:
        a = self._lv[lit]
        if a == 0:
            return _UNDEF
        return 1 if a > 0 else 0

    # ------------------------------------------------------------------
    # Branching heuristics (indexed VSIDS heap)
    # ------------------------------------------------------------------

    def _pick_branch(self) -> int | None:
        lv = self._lv
        heap = self._heap
        pos = self._hpos
        act = self._activity
        while heap:
            # _heap_pop inlined: most pops discard assigned vars, so
            # the call overhead multiplies.
            top = heap[0]
            pos[top] = -1
            last = heap.pop()
            n = len(heap)
            if n:
                a = act[last]
                i = 0
                while True:
                    child = 2 * i + 1
                    if child >= n:
                        break
                    cv = heap[child]
                    right = child + 1
                    if right < n and act[heap[right]] > act[cv]:
                        child = right
                        cv = heap[child]
                    if act[cv] <= a:
                        break
                    heap[i] = cv
                    pos[cv] = i
                    i = child
                heap[i] = last
                pos[last] = i
            if not lv[top << 1]:
                return top << 1 | (self._phase[top] ^ 1)
        return None

    def _heap_insert(self, v: int) -> None:
        pos = self._hpos
        if pos[v] >= 0:
            return
        heap = self._heap
        heap.append(v)
        self._sift_up(len(heap) - 1)

    def _heap_pop(self) -> int:
        heap = self._heap
        pos = self._hpos
        top = heap[0]
        pos[top] = -1
        last = heap.pop()
        if heap:
            heap[0] = last
            pos[last] = 0
            self._sift_down(0)
        return top

    def _sift_up(self, i: int) -> None:
        heap, pos, act = self._heap, self._hpos, self._activity
        v = heap[i]
        a = act[v]
        while i > 0:
            parent = (i - 1) >> 1
            pv = heap[parent]
            if act[pv] >= a:
                break
            heap[i] = pv
            pos[pv] = i
            i = parent
        heap[i] = v
        pos[v] = i

    def _sift_down(self, i: int) -> None:
        heap, pos, act = self._heap, self._hpos, self._activity
        n = len(heap)
        v = heap[i]
        a = act[v]
        while True:
            child = 2 * i + 1
            if child >= n:
                break
            cv = heap[child]
            right = child + 1
            if right < n and act[heap[right]] > act[cv]:
                child = right
                cv = heap[child]
            if act[cv] <= a:
                break
            heap[i] = cv
            pos[cv] = i
            i = child
        heap[i] = v
        pos[v] = i

    def _bump_var(self, v: int) -> None:
        act = self._activity
        act[v] += self._var_inc
        if act[v] > 1e100:
            for u in range(1, self._nvars + 1):
                act[u] *= 1e-100
            self._var_inc *= 1e-100
        if self._hpos[v] >= 0:
            self._sift_up(self._hpos[v])

    def _bump_clause(self, cref: int) -> None:
        cact = self._cact
        a = cact.get(cref, 0.0) + self._cla_inc
        cact[cref] = a
        if a > 1e20:
            for c in cact:
                cact[c] *= 1e-20
            self._cla_inc *= 1e-20

    # ------------------------------------------------------------------
    # Restarts / input mapping
    # ------------------------------------------------------------------

    def _luby_limit(self) -> int:
        return self._restart_base * _luby(self.stats.restarts + 1)

    def _from_dimacs(self, d: int) -> int:
        if d == 0:
            raise SatError("literal 0 is not valid")
        v = abs(d)
        if v > self._nvars:
            raise SatError(f"variable {v} was never allocated")
        return _lit(v, negative=d < 0)


def _luby(i: int) -> int:
    """The i-th element (1-based) of the Luby restart sequence:
    1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 ..."""
    x = i - 1
    size, seq = 1, 0
    while size < x + 1:
        seq += 1
        size = 2 * size + 1
    while size - 1 != x:
        size = (size - 1) // 2
        seq -= 1
        x %= size
    return 1 << seq
