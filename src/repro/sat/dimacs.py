"""DIMACS CNF reading/writing.

Useful for debugging the solver against external instances and for dumping
the model checker's queries for offline inspection.
"""

from __future__ import annotations

from typing import Iterable, TextIO

from repro.errors import SatError
from repro.sat.solver import Solver


def parse_dimacs(text: str) -> tuple[int, list[list[int]]]:
    """Parse DIMACS CNF text; returns ``(num_vars, clauses)``."""
    num_vars = 0
    clauses: list[list[int]] = []
    current: list[int] = []
    declared = False
    for raw_line in text.splitlines():
        line = raw_line.strip()
        if not line or line.startswith("c"):
            continue
        if line.startswith("p"):
            parts = line.split()
            if len(parts) != 4 or parts[1] != "cnf":
                raise SatError(f"bad problem line: {line!r}")
            num_vars = int(parts[2])
            declared = True
            continue
        for tok in line.split():
            lit = int(tok)
            if lit == 0:
                clauses.append(current)
                current = []
            else:
                num_vars = max(num_vars, abs(lit))
                current.append(lit)
    if current:
        clauses.append(current)
    if not declared and not clauses:
        raise SatError("empty DIMACS input")
    return num_vars, clauses


def to_dimacs(num_vars: int, clauses: Iterable[list[int]]) -> str:
    """Render clauses as DIMACS CNF text."""
    clause_list = [list(c) for c in clauses]
    lines = [f"p cnf {num_vars} {len(clause_list)}"]
    for clause in clause_list:
        lines.append(" ".join(str(lit) for lit in clause) + " 0")
    return "\n".join(lines) + "\n"


def solver_from_dimacs(text: str) -> Solver:
    """Build a fresh solver loaded with a DIMACS instance."""
    num_vars, clauses = parse_dimacs(text)
    solver = Solver()
    for _ in range(num_vars):
        solver.add_var()
    for clause in clauses:
        solver.add_clause(clause)
    return solver


def write_dimacs(fp: TextIO, num_vars: int,
                 clauses: Iterable[list[int]]) -> None:
    fp.write(to_dimacs(num_vars, clauses))
