"""From-scratch CDCL SAT solver with a MiniSat-style interface."""

from repro.sat.solver import SatStats, Solver
from repro.sat.dimacs import parse_dimacs, to_dimacs

__all__ = ["SatStats", "Solver", "parse_dimacs", "to_dimacs"]
