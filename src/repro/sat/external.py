"""External SAT solver bridge: race installed binaries past Python.

The pure-Python CDCL core is the portability floor, not the speed
ceiling.  This module shells out to any installed DIMACS-speaking SAT
binary (kissat, cadical, minisat, ...) through :mod:`repro.sat.dimacs`,
wrapped in a :class:`SubprocessSolver` that duck-types just enough of
:class:`~repro.sat.solver.Solver` for the model checker's
``FrameSolver``/``CnfBuilder`` plumbing to drive it unmodified.  The
model-checking layers therefore gain an external engine with zero
layer-specific code — it is registered as an ordinary strategy in
:mod:`repro.mc.strategy`.

Availability and degradation
----------------------------

Binaries are *auto-detected* (:func:`find_external_solver` probes
``$PATH``, honouring ``REPRO_SAT_BINARY`` as an override) and the
strategy is *opt-in*: it is registered but never part of the default
portfolio, and when no binary exists its verdict is a clean UNKNOWN so
racing it anywhere is always safe.

Trust model
-----------

A SAT answer is **verified**: the witness model is checked against every
clause we sent, so a buggy or lying binary surfaces as a loud
:class:`~repro.errors.SatError`, never as a wrong trace.  An UNSAT
answer is taken on trust (these binaries do not emit checkable proofs in
a common format); the external strategy is therefore registered as a
*refuter* — counterexamples it finds are independently validated, while
unbounded proofs stay with the in-process engines.
"""

from __future__ import annotations

import os
import shutil
import subprocess
import tempfile
import time
from dataclasses import dataclass, field

from repro.errors import SatError
from repro.sat.dimacs import to_dimacs
from repro.sat.solver import SatStats

#: Known binaries, probed in order.  ``style`` is the output convention:
#: "stdout" solvers print ``s SATISFIABLE`` / ``v ...`` lines on stdout
#: (kissat/cadical/picosat lineage); "file" solvers take a result-file
#: argument and write ``SAT\n<model>`` into it (minisat lineage).  Both
#: use exit code 10 for SAT and 20 for UNSAT.
SOLVER_CANDIDATES: tuple[tuple[str, str], ...] = (
    ("kissat", "stdout"),
    ("cadical", "stdout"),
    ("picosat", "stdout"),
    ("lingeling", "stdout"),
    ("minisat", "file"),
    ("glucose", "file"),
)

ENV_BINARY = "REPRO_SAT_BINARY"
ENV_STYLE = "REPRO_SAT_STYLE"


@dataclass(frozen=True)
class ExternalSolverSpec:
    """A resolved external solver: executable path plus output style."""

    path: str
    style: str  # "stdout" or "file"
    name: str = ""

    def __post_init__(self):
        if self.style not in ("stdout", "file"):
            raise SatError(f"unknown external solver style {self.style!r}")


def find_external_solver(binary: str | None = None) -> ExternalSolverSpec | None:
    """Locate a usable SAT binary, or None (the strategy degrades).

    ``binary`` may name a candidate ("kissat") or be a path; the
    ``REPRO_SAT_BINARY`` environment variable overrides auto-detection
    the same way, with ``REPRO_SAT_STYLE`` forcing the output convention
    for binaries not in the known list (defaults to "stdout").
    """
    styles = dict(SOLVER_CANDIDATES)
    requested = binary or os.environ.get(ENV_BINARY)
    if requested:
        path = shutil.which(requested)
        if path is None:
            return None
        base = os.path.basename(requested)
        style = os.environ.get(ENV_STYLE) or styles.get(base, "stdout")
        return ExternalSolverSpec(path=path, style=style, name=base)
    for name, style in SOLVER_CANDIDATES:
        path = shutil.which(name)
        if path is not None:
            return ExternalSolverSpec(path=path, style=style, name=name)
    return None


@dataclass
class SubprocessSolver:
    """Drop-in ``Solver`` stand-in that solves via an external binary.

    Clauses accumulate in Python; every ``solve`` call writes the whole
    instance (assumptions appended as unit clauses) to a temp file and
    runs the binary — no incrementality, which is exactly the right
    trade for BMC-style workloads where each depth's query dwarfs the
    encoding cost.  Implements the slice of the ``Solver`` interface the
    ``CnfBuilder``/``FrameSolver`` plumbing uses: ``add_var``,
    ``add_clause``, ``solve``, ``solve_limited``, ``model_value``,
    ``model``, ``num_vars``, ``stats``.
    """

    spec: ExternalSolverSpec
    timeout_s: float | None = None
    stats: SatStats = field(default_factory=SatStats)

    def __post_init__(self):
        self._nvars = 0
        self._clauses: list[list[int]] = []
        self._ok = True
        self._model: list[int] = []

    # -- problem construction ------------------------------------------

    def add_var(self) -> int:
        self._nvars += 1
        self.stats.max_vars = self._nvars
        return self._nvars

    def num_vars(self) -> int:
        return self._nvars

    def add_clause(self, dimacs_lits: list[int]) -> bool:
        self.stats.clauses_added += 1
        lits = [int(d) for d in dimacs_lits]
        for d in lits:
            if d == 0 or abs(d) > self._nvars:
                raise SatError(f"bad literal {d} in external clause")
        if not lits:
            self._ok = False
            return False
        self._clauses.append(lits)
        return True

    # -- solving --------------------------------------------------------

    def solve(self, assumptions: list[int] | None = None) -> bool:
        result = self.solve_limited(assumptions)
        if result is None:
            raise SatError("external solve timed out without a budget")
        return result

    def solve_limited(self, assumptions: list[int] | None = None,
                      conflict_budget: int | None = None) -> bool | None:
        """Solve via the subprocess; None on timeout.

        ``conflict_budget`` cannot be imposed on an arbitrary binary and
        is ignored; bounded-latency callers get the wall-clock
        ``timeout_s`` instead, whose expiry maps to the same
        indeterminate None as an exhausted budget.
        """
        self._model = []
        if not self._ok:
            return False
        clauses = self._clauses
        extra = [[int(d)] for d in (assumptions or [])]
        text = to_dimacs(self._nvars, clauses + extra)
        started = time.perf_counter()
        try:
            verdict, model = _run_binary(self.spec, text, self._nvars,
                                         self.timeout_s)
        except subprocess.TimeoutExpired:
            return None
        finally:
            self.stats.solve_seconds += time.perf_counter() - started
        if verdict is True:
            self._check_model(model, clauses + extra)
            self._model = model
            return True
        return verdict

    def _check_model(self, model: list[int], clauses: list[list[int]]) -> None:
        """Validate a claimed SAT answer; a lying binary fails loudly."""
        for clause in clauses:
            if not any(model[abs(d)] == (1 if d > 0 else -1)
                       for d in clause):
                raise SatError(
                    f"external solver {self.spec.name or self.spec.path} "
                    f"returned a model violating clause {clause}")

    # -- model access ---------------------------------------------------

    def model_value(self, var: int) -> bool:
        if not self._model:
            raise SatError("no model available (last solve returned False?)")
        if not (1 <= var <= self._nvars):
            raise SatError(f"variable {var} out of range")
        return self._model[var] > 0

    def model(self) -> list[int]:
        return [v if self._model[v] > 0 else -v
                for v in range(1, self._nvars + 1)]


def _run_binary(spec: ExternalSolverSpec, dimacs_text: str, num_vars: int,
                timeout_s: float | None) -> tuple[bool | None, list[int]]:
    """Run one solve; returns (verdict, model as a sign array).

    The model array is indexed by variable (slot 0 unused): +1 true,
    -1 false; unmentioned variables default to false, matching how
    DIMACS solvers may omit don't-cares.
    """
    with tempfile.TemporaryDirectory(prefix="repro-sat-") as tmp:
        cnf_path = os.path.join(tmp, "query.cnf")
        with open(cnf_path, "w", encoding="utf-8") as fp:
            fp.write(dimacs_text)
        if spec.style == "file":
            out_path = os.path.join(tmp, "result.out")
            argv = [spec.path, cnf_path, out_path]
        else:
            argv = [spec.path, cnf_path]
        try:
            proc = subprocess.run(
                argv, capture_output=True, text=True, timeout=timeout_s,
                check=False)
        except FileNotFoundError:
            raise SatError(f"external solver vanished: {spec.path}")
        if spec.style == "file":
            try:
                with open(out_path, encoding="utf-8") as fp:
                    payload = fp.read()
            except FileNotFoundError:
                payload = ""
            return _parse_file_output(spec, proc.returncode, payload,
                                      num_vars)
        return _parse_stdout(spec, proc.returncode, proc.stdout, num_vars)


def _parse_stdout(spec: ExternalSolverSpec, returncode: int, stdout: str,
                  num_vars: int) -> tuple[bool | None, list[int]]:
    status: bool | None = None
    model = [-1] * (num_vars + 1)
    for line in stdout.splitlines():
        if line.startswith("s "):
            token = line.split(None, 2)[1] if len(line.split()) > 1 else ""
            if token == "SATISFIABLE":
                status = True
            elif token == "UNSATISFIABLE":
                status = False
        elif line.startswith("v "):
            for tok in line.split()[1:]:
                lit = int(tok)
                if lit != 0 and abs(lit) <= num_vars:
                    model[abs(lit)] = 1 if lit > 0 else -1
    if status is None:
        # Fall back to the conventional exit codes.
        if returncode == 10:
            status = True
        elif returncode == 20:
            status = False
        else:
            raise SatError(
                f"external solver {spec.name or spec.path} produced no "
                f"verdict (exit code {returncode})")
    return status, model


def _parse_file_output(spec: ExternalSolverSpec, returncode: int,
                       payload: str,
                       num_vars: int) -> tuple[bool | None, list[int]]:
    lines = [ln.strip() for ln in payload.splitlines() if ln.strip()]
    model = [-1] * (num_vars + 1)
    if lines and lines[0] in ("SAT", "SATISFIABLE"):
        for tok in " ".join(lines[1:]).split():
            lit = int(tok)
            if lit != 0 and abs(lit) <= num_vars:
                model[abs(lit)] = 1 if lit > 0 else -1
        return True, model
    if lines and lines[0] in ("UNSAT", "UNSATISFIABLE"):
        return False, model
    if returncode == 10:
        return True, model
    if returncode == 20:
        return False, model
    raise SatError(
        f"external solver {spec.name or spec.path} produced no verdict "
        f"(exit code {returncode}, result file {payload[:80]!r})")
