"""Elaboration: SystemVerilog-subset AST -> transition system.

The elaborator performs, in order:

1. **parameter resolution** — constant folding of ``parameter`` /
   ``localparam`` values with instantiation overrides;
2. **signal table construction** — widths from packed ranges, unpacked
   array (memory) dimensions, driver discovery (port input, continuous
   assign, ``always_comb``, ``always_ff``, instance output) with
   multiple-driver detection;
3. **hierarchy flattening** — child modules are elaborated recursively and
   inlined with dotted prefixes (``u_sub.state``);
4. **process lowering** — symbolic execution of statement blocks turns
   ``if``/``case``/assignment trees into ``ite`` expression trees;
   blocking assignments update the in-block environment, non-blocking
   assignments collect into the register's next-state function;
5. **reset extraction** — the reset input (from sensitivity lists or an
   explicit hint) is partially evaluated to recover each register's reset
   value as its formal initial state; the proof environment then pins
   reset inactive (standard formal-verification setup);
6. **memory lowering** — unpacked arrays become one wide register with
   mux-tree reads and mask/merge writes, so the whole system stays in the
   pure bit-vector IR.

Modeling notes (documented substitutions from full SystemVerilog):
two-state semantics (``x``/``z`` read as 0), a single global clock (the
first edge in every clocked sensitivity list), asynchronous resets
modeled synchronously (equivalent under the reset-inactive proof
environment), and unsupported constructs rejected loudly rather than
approximated.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ElaborationError
from repro.hdl import ast
from repro.hdl.parser import parse_source
from repro.ir import expr as E
from repro.ir.system import TransitionSystem
from repro.utils.bits import mask

_NATURAL_WIDTH = 32  # width of unsized decimal literals, as in Verilog


@dataclass
class _SignalInfo:
    """Everything the elaborator knows about one named signal."""

    name: str
    width: int
    direction: str | None = None       # input/output/None (internal)
    is_array: bool = False
    elem_width: int = 0
    n_elems: int = 0
    driver: str | None = None          # "input"|"assign"|"comb"|"ff"|"inst"
    driver_ref: object | None = None   # AST node or instance tuple
    initial: ast.HdlExpr | None = None


class _Unsized:
    """An unsized constant awaiting a context width."""

    __slots__ = ("value",)

    def __init__(self, value: int):
        self.value = value


def elaborate(source: str | ast.Module | list[ast.Module],
              top: str | None = None,
              params: dict[str, int] | None = None,
              reset: str | None = None,
              constrain_reset: bool = True,
              name: str | None = None) -> TransitionSystem:
    """Elaborate RTL source into a :class:`TransitionSystem`.

    Parameters
    ----------
    source:
        RTL text, a parsed module, or a list of modules (for hierarchies).
    top:
        Top module name (defaults to the last module in the source, which
        matches the common file layout of leaf-modules-first).
    params:
        Parameter overrides for the top module.
    reset:
        Reset input hint: ``"rst"`` (active high) or ``"!rst_n"`` (active
        low).  Usually unnecessary — resets named in edge-sensitivity
        lists are found automatically; common names (rst, reset, rst_n,
        resetn, rst_ni) are recognized for synchronous resets.
    constrain_reset:
        Add the ``reset inactive`` environment constraint (standard formal
        setup: start from the reset state, never re-assert).
    name:
        Name for the resulting system (defaults to the top module name).
    """
    if isinstance(source, str):
        modules = parse_source(source)
    elif isinstance(source, ast.Module):
        modules = [source]
    else:
        modules = list(source)
    by_name = {m.name: m for m in modules}
    for module in modules:
        _normalize_instances(module, by_name)
    if top is None:
        top_module = modules[-1]
    else:
        if top not in by_name:
            raise ElaborationError(f"top module {top!r} not found")
        top_module = by_name[top]
    elab = _ModuleElaborator(top_module, by_name, params or {},
                             reset_hint=reset)
    system = elab.build(name or top_module.name,
                        constrain_reset=constrain_reset)
    system.validate()
    return system


# ---------------------------------------------------------------------------


def _normalize_instances(module: ast.Module,
                         by_name: dict[str, ast.Module]) -> None:
    """Rewrite positional and ``.*`` instance connections as named ones.

    Positional connections need the child's declared port order and
    ``.*`` needs its port list, so this runs once up front (when every
    module is known) and the rest of elaboration only ever sees
    ``inst.connections``.
    """
    for inst in module.instances:
        child = by_name.get(inst.module)
        if child is None:
            raise ElaborationError(
                f"instance {inst.name!r} refers to unknown module "
                f"{inst.module!r}", inst.line)
        if inst.positional:
            if len(inst.positional) > len(child.ports):
                raise ElaborationError(
                    f"instance {inst.name!r} has "
                    f"{len(inst.positional)} positional connections "
                    f"but module {child.name!r} declares only "
                    f"{len(child.ports)} ports", inst.line)
            for port, expr in zip(child.ports, inst.positional):
                inst.connections[port.name] = expr
            inst.positional = []
        if inst.wildcard:
            parent_signals = {p.name for p in module.ports}
            parent_signals.update(n.name for n in module.nets)
            for port in child.ports:
                if port.name in inst.connections:
                    continue
                if port.name not in parent_signals:
                    raise ElaborationError(
                        f"instance {inst.name!r}: .* cannot connect "
                        f"port {port.name!r} — no signal of that name "
                        f"in module {module.name!r}", inst.line)
                inst.connections[port.name] = ast.Ident(
                    name=port.name, line=inst.line)
            inst.wildcard = False


class _ModuleElaborator:
    """Elaborates one module (recursively flattening instances)."""

    def __init__(self, module: ast.Module,
                 library: dict[str, ast.Module],
                 overrides: dict[str, int],
                 reset_hint: str | None = None):
        self.module = module
        self.library = library
        self.reset_hint = reset_hint
        self.params = self._eval_params(overrides)
        self.signals: dict[str, _SignalInfo] = {}
        self.clock: str | None = None
        self.resets: dict[str, int] = {}   # reset input -> active value
        self._lower_memo: dict[str, E.Expr] = {}
        self._lowering: set[str] = set()
        self._comb_results: dict[int, dict[str, E.Expr]] = {}
        self._child_systems: dict[str, TransitionSystem] = {}
        self._child_outputs: dict[str, tuple[str, str]] = {}
        self._collect_signals()
        self._find_clock_and_resets()
        self._assign_drivers()

    # ------------------------------------------------------------------
    # Parameters
    # ------------------------------------------------------------------

    def _eval_params(self, overrides: dict[str, int]) -> dict[str, int]:
        env: dict[str, int] = {}
        for p in self.module.params:
            if not p.local and p.name in overrides:
                env[p.name] = overrides[p.name]
            else:
                env[p.name] = self._const_eval(p.value, env)
        unknown = set(overrides) - {p.name for p in self.module.params}
        if unknown:
            raise ElaborationError(
                f"unknown parameter overrides {sorted(unknown)} "
                f"for module {self.module.name}")
        return env

    def _const_eval(self, e: ast.HdlExpr,
                    env: dict[str, int] | None = None) -> int:
        env = self.params if env is None else env
        if isinstance(e, ast.Number):
            return e.value
        if isinstance(e, ast.Ident):
            if e.name in env:
                return env[e.name]
            raise ElaborationError(
                f"{e.name!r} is not a constant", e.line)
        if isinstance(e, ast.Unary):
            v = self._const_eval(e.operand, env)
            return {"-": -v, "+": v, "!": int(v == 0), "~": ~v}.get(
                e.op, self._const_unsupported(e))
        if isinstance(e, ast.Binary):
            a = self._const_eval(e.left, env)
            b = self._const_eval(e.right, env)
            ops = {
                "+": a + b, "-": a - b, "*": a * b,
                "/": a // b if b else 0, "%": a % b if b else 0,
                "<<": a << b, ">>": a >> b,
                "&": a & b, "|": a | b, "^": a ^ b,
                "==": int(a == b), "!=": int(a != b),
                "<": int(a < b), "<=": int(a <= b),
                ">": int(a > b), ">=": int(a >= b),
                "&&": int(bool(a) and bool(b)),
                "||": int(bool(a) or bool(b)),
            }
            if e.op in ops:
                return ops[e.op]
            self._const_unsupported(e)
        if isinstance(e, ast.Ternary):
            return (self._const_eval(e.then, env)
                    if self._const_eval(e.cond, env)
                    else self._const_eval(e.other, env))
        if isinstance(e, ast.Call) and e.func == "$clog2":
            v = self._const_eval(e.args[0], env)
            return max(0, (v - 1).bit_length())
        self._const_unsupported(e)

    def _const_unsupported(self, e: ast.HdlExpr) -> int:
        raise ElaborationError(
            f"expression is not elaboration-time constant "
            f"({type(e).__name__})", e.line)

    # ------------------------------------------------------------------
    # Signal table
    # ------------------------------------------------------------------

    def _range_width(self, r: ast.Range | None, line: int) -> int:
        if r is None:
            return 1
        msb = self._const_eval(r.msb)
        lsb = self._const_eval(r.lsb)
        if lsb != 0 and msb != 0:
            raise ElaborationError(
                "packed ranges must be [W-1:0] form", line)
        return abs(msb - lsb) + 1

    def _collect_signals(self) -> None:
        for port in self.module.ports:
            width = self._range_width(port.range_, port.line)
            self.signals[port.name] = _SignalInfo(
                port.name, width, direction=port.direction)
        for net in self.module.nets:
            width = self._range_width(net.range_, net.line)
            if net.name in self.signals:
                info = self.signals[net.name]
                info.width = width
                if net.initial is not None:
                    info.initial = net.initial
                continue
            info = _SignalInfo(net.name, width, initial=net.initial)
            if net.array_range is not None:
                hi = self._const_eval(net.array_range.msb)
                lo = self._const_eval(net.array_range.lsb)
                n = abs(hi - lo) + 1
                info.is_array = True
                info.elem_width = width
                info.n_elems = n
                info.width = width * n
            self.signals[net.name] = info

    def _info(self, name: str, line: int = 0) -> _SignalInfo:
        info = self.signals.get(name)
        if info is None:
            raise ElaborationError(f"undeclared signal {name!r}", line)
        return info

    # ------------------------------------------------------------------
    # Clock / reset discovery
    # ------------------------------------------------------------------

    def _find_clock_and_resets(self) -> None:
        for ff in self.module.always_ffs:
            if not ff.sensitivity:
                raise ElaborationError("clocked process without sensitivity",
                                       ff.line)
            clock = ff.sensitivity[0].signal
            if self.clock is None:
                self.clock = clock
            elif self.clock != clock:
                raise ElaborationError(
                    f"multiple clocks ({self.clock!r} vs {clock!r}) are "
                    "not supported", ff.line)
            for item in ff.sensitivity[1:]:
                active = 1 if item.edge == "posedge" else 0
                self.resets[item.signal] = active
        if self.clock is None:
            self.clock = self._instance_clock()
        if self.reset_hint:
            hint = self.reset_hint
            if hint.startswith("!"):
                self.resets.setdefault(hint[1:], 0)
            else:
                self.resets.setdefault(hint, 1)
        elif not self.resets:
            # Synchronous reset by conventional name.
            for candidate, active in (("rst", 1), ("reset", 1), ("rst_n", 0),
                                      ("resetn", 0), ("rst_ni", 0)):
                info = self.signals.get(candidate)
                if info is not None and info.direction == "input":
                    self.resets[candidate] = active
                    break

    def _instance_clock(self) -> str | None:
        """Clock propagated from instantiated children.

        A module with no clocked process of its own still has a clock if a
        child does; the parent signal wired to the child's clock port is
        then treated as this module's clock.
        """
        for inst in self.module.instances:
            child = self.library.get(inst.module)
            if child is None:
                continue
            child_clock = _ast_clock(child, self.library, set())
            if child_clock is not None:
                conn = inst.connections.get(child_clock)
                if isinstance(conn, ast.Ident):
                    return conn.name
        return None

    # ------------------------------------------------------------------
    # Driver discovery
    # ------------------------------------------------------------------

    @staticmethod
    def _target_name(target: ast.HdlExpr) -> str:
        while isinstance(target, (ast.Index, ast.Slice)):
            target = target.base
        if not isinstance(target, ast.Ident):
            raise ElaborationError("unsupported assignment target",
                                   target.line)
        return target.name

    def _targets_of(self, stmt: ast.Stmt) -> set[str]:
        if isinstance(stmt, ast.Block):
            out: set[str] = set()
            for s in stmt.stmts:
                out |= self._targets_of(s)
            return out
        if isinstance(stmt, ast.If):
            out = self._targets_of(stmt.then)
            if stmt.other is not None:
                out |= self._targets_of(stmt.other)
            return out
        if isinstance(stmt, ast.Case):
            out = set()
            for item in stmt.items:
                out |= self._targets_of(item.body)
            return out
        if isinstance(stmt, ast.Assign):
            return {self._target_name(stmt.target)}
        return set()

    def _set_driver(self, name: str, kind: str, ref: object,
                    line: int) -> None:
        info = self._info(name, line)
        if info.direction == "input":
            raise ElaborationError(f"input port {name!r} cannot be driven",
                                   line)
        if info.driver is not None and \
                (info.driver != kind or info.driver_ref is not ref):
            raise ElaborationError(
                f"signal {name!r} has multiple drivers", line)
        info.driver = kind
        info.driver_ref = ref

    def _assign_drivers(self) -> None:
        for a in self.module.assigns:
            self._set_driver(self._target_name(a.target), "assign", a,
                             a.line)
        for comb in self.module.always_combs:
            for name in self._targets_of(comb.body):
                self._set_driver(name, "comb", comb, comb.line)
        for ff in self.module.always_ffs:
            for name in self._targets_of(ff.body):
                self._set_driver(name, "ff", ff, ff.line)
        for inst in self.module.instances:
            child = self.library.get(inst.module)
            if child is None:
                raise ElaborationError(
                    f"unknown module {inst.module!r}", inst.line)
            for port_name, conn in inst.connections.items():
                port = child.port(port_name)
                if port is None:
                    raise ElaborationError(
                        f"module {child.name!r} has no port {port_name!r}",
                        inst.line)
                if port.direction == "output":
                    if not isinstance(conn, ast.Ident):
                        raise ElaborationError(
                            "output ports must connect to plain signals",
                            inst.line)
                    self._set_driver(conn.name, "inst",
                                     (inst.name, port_name), inst.line)
                    self._child_outputs[conn.name] = (inst.name, port_name)
        for info in self.signals.values():
            if info.direction == "input":
                info.driver = "input"
        # `wire x = expr;` — a declaration initializer on a signal no
        # process drives is a continuous assignment (Verilog semantics).
        for info in self.signals.values():
            if info.driver is None and info.initial is not None:
                info.driver = "decl"
                info.driver_ref = info.initial

    # ------------------------------------------------------------------
    # Build
    # ------------------------------------------------------------------

    def build(self, system_name: str,
              constrain_reset: bool = True) -> TransitionSystem:
        system = TransitionSystem(system_name)
        self.system = system

        # Inputs: all input ports except the clock.
        for info in self.signals.values():
            if info.direction == "input" and info.name != self.clock:
                system.add_input(info.name, info.width)

        # Registers: targets of clocked processes (declared widths).
        for info in self.signals.values():
            if info.driver == "ff":
                system.add_state(info.name, info.width)

        # Child instances: elaborate and inline before lowering, because
        # parent expressions may read child outputs.
        for inst in self.module.instances:
            self._inline_instance(inst)

        # Next-state functions and resets.
        for ff in self.module.always_ffs:
            self._lower_ff(ff)

        # Undriven non-inputs become free cut points (inputs) first, so
        # defines that read them resolve.
        for info in self.signals.values():
            if info.driver is None:
                system.add_input(info.name, info.width)
        # Defines: every non-register internal signal and output port.
        for info in self.signals.values():
            if info.driver in ("assign", "comb", "inst", "decl"):
                system.add_define(info.name, self._lower_signal(info.name))

        # Reset environment.
        for rst_name, active in self.resets.items():
            info = self.signals.get(rst_name)
            if info is None or info.direction != "input":
                continue
            if constrain_reset:
                system.add_constraint(
                    E.eq(E.var(rst_name, info.width),
                         E.const(0 if active else 1, info.width)))
        return system

    # ------------------------------------------------------------------
    # Instance inlining
    # ------------------------------------------------------------------

    def _inline_instance(self, inst: ast.Instance) -> None:
        child_ast = self.library[inst.module]
        overrides = {name: self._const_eval(value)
                     for name, value in inst.param_overrides.items()}
        child = _ModuleElaborator(child_ast, self.library, overrides)
        child_sys = child.build(f"{self.module.name}.{inst.name}",
                                constrain_reset=False)
        prefix = f"{inst.name}."

        # Bindings for the child's inputs (parent-level expressions).
        bindings: dict[str, E.Expr] = {}
        for port in child_ast.ports:
            if port.direction != "input":
                continue
            if port.name == child.clock:
                continue
            conn = inst.connections.get(port.name)
            child_width = child_sys.width_of(port.name) \
                if child_sys.has_signal(port.name) else 1
            if conn is None:
                raise ElaborationError(
                    f"input port {port.name!r} of {inst.name!r} unconnected",
                    inst.line)
            bindings[port.name] = self._resize(
                self._lower_expr(conn), child_width)

        subst: dict[str, E.Expr] = dict(bindings)
        for state_name, v in child_sys.states.items():
            subst[state_name] = E.var(prefix + state_name, v.width)

        for state_name, v in child_sys.states.items():
            new_name = prefix + state_name
            self.system.add_state(new_name, v.width)
            if state_name in child_sys.init:
                self.system.set_init(
                    new_name, E.substitute(child_sys.init[state_name],
                                           subst))
            self.system.set_next(
                new_name, E.substitute(child_sys.next[state_name], subst))
        for cond in child_sys.constraints:
            self.system.add_constraint(E.substitute(cond, subst))
        # Child-internal inputs (cut points) become parent inputs.
        for in_name, v in child_sys.inputs.items():
            if in_name not in bindings:
                self.system.add_input(prefix + in_name, v.width)
                subst[in_name] = E.var(prefix + in_name, v.width)

        self._child_systems[inst.name] = child_sys
        # Pre-resolve output expressions for parent-side reads.
        for conn_name, (inst_name, port_name) in \
                list(self._child_outputs.items()):
            if inst_name != inst.name:
                continue
            resolved = child_sys.resolve_defines(
                child_sys.lookup(port_name))
            self._lower_memo[conn_name] = self._resize(
                E.substitute(resolved, subst),
                self._info(conn_name).width)

    # ------------------------------------------------------------------
    # Clocked process lowering
    # ------------------------------------------------------------------

    def _lower_ff(self, ff: ast.AlwaysFF) -> None:
        targets = sorted(self._targets_of(ff.body))
        base_env = {name: E.var(name, self._info(name).width)
                    for name in targets}
        env, nb = self._exec_stmt(ff.body, dict(base_env), {}, base_env)
        for name in targets:
            info = self._info(name)
            next_expr = nb.get(name, env.get(name, base_env[name]))
            self.system.set_next(name, next_expr)
            init = self._extract_init(name, next_expr, info)
            if init is not None:
                self.system.set_init(name, init)

    def _extract_init(self, name: str, next_expr: E.Expr,
                      info: _SignalInfo) -> E.Expr | None:
        """Recover the register's reset value as its formal initial state.

        Partial-evaluates the next-state function with every reset input
        pinned active; if the result is a constant the register has a
        well-defined reset value.  Declaration initializers serve as a
        fallback (FPGA-style initialization).
        """
        substitution = {}
        for rst_name, active in self.resets.items():
            rst_info = self.signals.get(rst_name)
            if rst_info is not None and rst_info.direction == "input":
                substitution[rst_name] = E.const(
                    1 if active else 0, rst_info.width)
        if substitution:
            folded = E.substitute(next_expr, substitution)
            if folded.is_const:
                return folded
        if info.initial is not None:
            value = self._const_eval(info.initial)
            return E.const(value, info.width)
        return None

    # ------------------------------------------------------------------
    # Statement symbolic execution
    # ------------------------------------------------------------------

    def _exec_stmt(self, stmt: ast.Stmt, env: dict[str, E.Expr],
                   nb: dict[str, E.Expr],
                   base_env: dict[str, E.Expr]
                   ) -> tuple[dict[str, E.Expr], dict[str, E.Expr]]:
        if isinstance(stmt, ast.Block):
            for s in stmt.stmts:
                env, nb = self._exec_stmt(s, env, nb, base_env)
            return env, nb
        if isinstance(stmt, ast.NullStmt):
            return env, nb
        if isinstance(stmt, ast.Assign):
            value = self._lower_expr(stmt.value, env=env)
            name = self._target_name(stmt.target)
            info = self._info(name, stmt.line)
            # Read-modify-write base for partial updates: blocking sees the
            # in-block value; non-blocking merges with already-scheduled
            # non-blocking updates (two writes to different array slots in
            # one cycle must both land).
            if stmt.blocking:
                current = env.get(name, base_env.get(name))
            else:
                current = nb.get(name, env.get(name, base_env.get(name)))
            if current is None:
                current = E.var(name, info.width)
            whole = self._write_target(stmt.target, value, current, info,
                                       env)
            if stmt.blocking:
                env = dict(env)
                env[name] = whole
            else:
                nb = dict(nb)
                nb[name] = whole
            return env, nb
        if isinstance(stmt, ast.If):
            cond = self._bool(self._lower_expr(stmt.cond, env=env))
            env_t, nb_t = self._exec_stmt(stmt.then, dict(env), dict(nb),
                                          base_env)
            if stmt.other is not None:
                env_f, nb_f = self._exec_stmt(stmt.other, dict(env),
                                              dict(nb), base_env)
            else:
                env_f, nb_f = env, nb
            return (self._merge(cond, env_t, env_f, env, base_env, stmt),
                    self._merge(cond, nb_t, nb_f, nb, base_env, stmt,
                                nonblocking=True))
        if isinstance(stmt, ast.Case):
            return self._exec_case(stmt, env, nb, base_env)
        raise ElaborationError(
            f"unsupported statement {type(stmt).__name__}", stmt.line)

    def _exec_case(self, stmt: ast.Case, env, nb, base_env):
        subject = self._lower_expr(stmt.subject, env=env)
        if isinstance(subject, _Unsized):
            subject = E.const(subject.value, _NATURAL_WIDTH)
        chain: ast.Stmt | None = None
        default_body: ast.Stmt = ast.NullStmt(line=stmt.line)
        labeled = []
        for item in stmt.items:
            if not item.labels:
                default_body = item.body
            else:
                labeled.append(item)
        chain = default_body
        for item in reversed(labeled):
            conds = item.labels
            cond_expr: ast.HdlExpr | None = None
            for label in conds:
                this = ast.Binary(op="==", left=stmt.subject, right=label,
                                  line=item.line)
                cond_expr = this if cond_expr is None else ast.Binary(
                    op="||", left=cond_expr, right=this, line=item.line)
            chain = ast.If(cond=cond_expr, then=item.body, other=chain,
                           line=item.line)
        return self._exec_stmt(chain, env, nb, base_env)

    def _merge(self, cond: E.Expr, true_map, false_map, pre_map,
               base_env, stmt, nonblocking: bool = False):
        merged = dict(pre_map)
        for key in set(true_map) | set(false_map):
            in_true = key in true_map
            in_false = key in false_map
            if in_true and in_false:
                t_val, f_val = true_map[key], false_map[key]
            else:
                # One branch did not assign: registers keep their value,
                # pure combinational targets would latch -> error there.
                default = pre_map.get(key, base_env.get(key))
                if default is None:
                    raise ElaborationError(
                        f"signal {key!r} is not assigned on all paths "
                        "(would infer a latch)", stmt.line)
                t_val = true_map.get(key, default)
                f_val = false_map.get(key, default)
            merged[key] = t_val if t_val is f_val else E.ite(cond, t_val,
                                                             f_val)
        return merged

    # ------------------------------------------------------------------
    # Write targets (bit/slice/array element updates)
    # ------------------------------------------------------------------

    def _write_target(self, target: ast.HdlExpr, value, current: E.Expr,
                      info: _SignalInfo,
                      env: dict[str, E.Expr]) -> E.Expr:
        if isinstance(target, ast.Ident):
            return self._resize(value, info.width)
        if isinstance(target, ast.Slice):
            msb = self._const_eval(target.msb)
            lsb = self._const_eval(target.lsb)
            width = msb - lsb + 1
            return self._splice(current, lsb, width,
                                self._resize(value, width))
        if isinstance(target, ast.Index):
            if info.is_array:
                index = self._lower_expr(target.index, env=env)
                return self._array_write(
                    current, index, self._resize(value, info.elem_width),
                    info)
            try:
                bit_index = self._const_eval(target.index)
            except ElaborationError:
                raise ElaborationError(
                    "dynamic bit-select on assignment targets is not "
                    "supported (use an array)", target.line)
            return self._splice(current, bit_index, 1,
                                self._resize(value, 1))
        raise ElaborationError("unsupported assignment target", target.line)

    @staticmethod
    def _splice(whole: E.Expr, lsb: int, width: int,
                value: E.Expr) -> E.Expr:
        """Replace bits [lsb+width-1 : lsb] of ``whole`` with ``value``."""
        parts = []
        if lsb + width < whole.width:
            parts.append(E.extract(whole, whole.width - 1, lsb + width))
        parts.append(value)
        if lsb > 0:
            parts.append(E.extract(whole, lsb - 1, 0))
        result = parts[0]
        for p in parts[1:]:
            result = E.concat(result, p)
        return result

    def _array_write(self, whole: E.Expr, index, value: E.Expr,
                     info: _SignalInfo) -> E.Expr:
        if isinstance(index, _Unsized):
            lsb = index.value * info.elem_width
            if lsb + info.elem_width > info.width:
                raise ElaborationError(
                    f"array index {index.value} out of range for "
                    f"{info.name!r}")
            return self._splice(whole, lsb, info.elem_width, value)
        # Dynamic index: whole = (whole & ~(mask << i*ew)) | (value << ...)
        total = info.width
        shift_amount = E.mul(E.zext(index, total),
                             E.const(info.elem_width, total))
        elem_mask = E.shl(E.const(mask(info.elem_width), total),
                          shift_amount)
        cleared = E.and_(whole, E.not_(elem_mask))
        placed = E.shl(E.zext(value, total), shift_amount)
        return E.or_(cleared, placed)

    def _array_read(self, whole: E.Expr, index, info: _SignalInfo) -> E.Expr:
        if isinstance(index, _Unsized):
            lsb = index.value * info.elem_width
            if lsb + info.elem_width > info.width:
                raise ElaborationError(
                    f"array index {index.value} out of range for "
                    f"{info.name!r}")
            return E.extract(whole, lsb + info.elem_width - 1, lsb)
        total = info.width
        shift_amount = E.mul(E.zext(index, total),
                             E.const(info.elem_width, total))
        shifted = E.lshr(whole, shift_amount)
        return E.extract(shifted, info.elem_width - 1, 0)

    # ------------------------------------------------------------------
    # Signal lowering (wires, comb outputs, instance outputs)
    # ------------------------------------------------------------------

    def _lower_signal(self, name: str, line: int = 0) -> E.Expr:
        if name in self._lower_memo:
            return self._lower_memo[name]
        info = self._info(name, line)
        if name in self._lowering:
            raise ElaborationError(
                f"combinational loop through {name!r}", line)
        self._lowering.add(name)
        try:
            expr = self._lower_signal_uncached(info, line)
        finally:
            self._lowering.discard(name)
        self._lower_memo[name] = expr
        return expr

    def _lower_signal_uncached(self, info: _SignalInfo,
                               line: int) -> E.Expr:
        name = info.name
        if info.driver == "input" or info.driver == "ff":
            return E.var(name, info.width)
        if info.driver == "decl":
            return self._resize(self._lower_expr(info.driver_ref),
                                info.width)
        if info.driver == "assign":
            a: ast.ContinuousAssign = info.driver_ref
            value = self._resize(self._lower_expr(a.value), info.width)
            if isinstance(a.target, ast.Ident):
                return value
            raise ElaborationError(
                "continuous assignment to slices is not supported; assign "
                "the whole signal", a.line)
        if info.driver == "comb":
            comb: ast.AlwaysComb = info.driver_ref
            results = self._comb_results.get(id(comb))
            if results is None:
                env, _nb = self._exec_stmt(comb.body, {}, {}, {})
                missing = self._targets_of(comb.body) - set(env)
                if missing:
                    raise ElaborationError(
                        f"always_comb leaves {sorted(missing)} unassigned "
                        "on some path", comb.line)
                results = {k: self._resize(v, self._info(k).width)
                           for k, v in env.items()}
                self._comb_results[id(comb)] = results
            return results[name]
        if info.driver == "inst":
            # Pre-resolved by _inline_instance.
            raise ElaborationError(
                f"instance output {name!r} read before instance "
                "elaboration", line)
        if info.driver is None:
            # Free cut point, registered as an input by build().
            return E.var(name, info.width)
        raise ElaborationError(f"cannot lower signal {name!r}", line)

    # ------------------------------------------------------------------
    # Expression lowering
    # ------------------------------------------------------------------

    def _bool(self, value) -> E.Expr:
        """Coerce to a 1-bit condition (Verilog truthiness: != 0)."""
        if isinstance(value, _Unsized):
            return E.true() if value.value else E.false()
        if value.width == 1:
            return value
        return E.redor(value)

    def _resize(self, value, width: int) -> E.Expr:
        if isinstance(value, _Unsized):
            return E.const(value.value, width)
        if value.width == width:
            return value
        if value.width > width:
            return E.extract(value, width - 1, 0)
        return E.zext(value, width)

    def _unify(self, a, b) -> tuple[E.Expr, E.Expr]:
        """Bring two operands to a common width (Verilog max-extension)."""
        if isinstance(a, _Unsized) and isinstance(b, _Unsized):
            return (E.const(a.value, _NATURAL_WIDTH),
                    E.const(b.value, _NATURAL_WIDTH))
        if isinstance(a, _Unsized):
            return E.const(a.value, b.width), b
        if isinstance(b, _Unsized):
            return a, E.const(b.value, a.width)
        width = max(a.width, b.width)
        return self._resize(a, width), self._resize(b, width)

    def _lower_expr(self, e: ast.HdlExpr,
                    env: dict[str, E.Expr] | None = None):
        """Lower an expression; may return ``_Unsized`` for bare constants."""
        if isinstance(e, ast.Number):
            if e.is_fill:
                # '0 / '1: context-width fill; -1 marks all-ones.
                return _Unsized(-1 if e.value == -1 else 0)
            if e.width is None:
                return _Unsized(e.value)
            return E.const(e.value, e.width)
        if isinstance(e, ast.Ident):
            if e.name in self.params:
                return _Unsized(self.params[e.name])
            if env is not None and e.name in env:
                return env[e.name]
            if e.name == self.clock:
                raise ElaborationError(
                    f"the clock {e.name!r} cannot be read as data", e.line)
            return self._lower_signal(e.name, e.line)
        if isinstance(e, ast.Unary):
            return self._lower_unary(e, env)
        if isinstance(e, ast.Binary):
            return self._lower_binary(e, env)
        if isinstance(e, ast.Ternary):
            cond = self._bool(self._lower_expr(e.cond, env))
            then_v, else_v = self._unify(self._lower_expr(e.then, env),
                                         self._lower_expr(e.other, env))
            return E.ite(cond, then_v, else_v)
        if isinstance(e, ast.Concat):
            parts = []
            for part in e.parts:
                v = self._lower_expr(part, env)
                if isinstance(v, _Unsized):
                    raise ElaborationError(
                        "unsized constants are not allowed in "
                        "concatenations", e.line)
                parts.append(v)
            result = parts[0]
            for p in parts[1:]:
                result = E.concat(result, p)
            return result
        if isinstance(e, ast.Repl):
            count = self._const_eval(e.count)
            operand = self._lower_expr(e.operand, env)
            if isinstance(operand, _Unsized):
                raise ElaborationError(
                    "unsized constants are not allowed in replications",
                    e.line)
            return E.repeat(operand, count)
        if isinstance(e, ast.Index):
            return self._lower_index(e, env)
        if isinstance(e, ast.Slice):
            base = self._lower_expr(e.base, env)
            if isinstance(base, _Unsized):
                base = E.const(base.value, _NATURAL_WIDTH)
            msb = self._const_eval(e.msb)
            lsb = self._const_eval(e.lsb)
            return E.extract(base, msb, lsb)
        if isinstance(e, ast.Call):
            return self._lower_call(e, env)
        raise ElaborationError(
            f"unsupported expression {type(e).__name__}", e.line)

    def _lower_index(self, e: ast.Index, env):
        if isinstance(e.base, ast.Ident):
            name = e.base.name
            info = self.signals.get(name)
            if info is not None and info.is_array:
                whole = env[name] if env is not None and name in env \
                    else self._lower_signal(name, e.line)
                index = self._lower_expr(e.index, env)
                return self._array_read(whole, index, info)
        base = self._lower_expr(e.base, env)
        if isinstance(base, _Unsized):
            base = E.const(base.value, _NATURAL_WIDTH)
        index = self._lower_expr(e.index, env)
        if isinstance(index, _Unsized):
            if not (0 <= index.value < base.width):
                raise ElaborationError(
                    f"bit index {index.value} out of range", e.line)
            return E.extract(base, index.value, index.value)
        shifted = E.lshr(base, self._resize(index, base.width))
        return E.extract(shifted, 0, 0)

    def _lower_unary(self, e: ast.Unary, env):
        operand = self._lower_expr(e.operand, env)
        if e.op in ("!",):
            return E.not_(self._bool(operand))
        if isinstance(operand, _Unsized):
            operand = E.const(operand.value, _NATURAL_WIDTH)
        if e.op == "~":
            return E.not_(operand)
        if e.op == "-":
            return E.neg(operand)
        if e.op == "+":
            return operand
        if e.op == "&":
            return E.redand(operand)
        if e.op == "|":
            return E.redor(operand)
        if e.op == "^":
            return E.redxor(operand)
        if e.op == "~&":
            return E.not_(E.redand(operand))
        if e.op == "~|":
            return E.not_(E.redor(operand))
        if e.op in ("~^", "^~"):
            return E.not_(E.redxor(operand))
        raise ElaborationError(f"unsupported unary operator {e.op!r}",
                               e.line)

    def _lower_binary(self, e: ast.Binary, env):
        if e.op in ("&&", "||"):
            a = self._bool(self._lower_expr(e.left, env))
            b = self._bool(self._lower_expr(e.right, env))
            return E.and_(a, b) if e.op == "&&" else E.or_(a, b)
        a = self._lower_expr(e.left, env)
        b = self._lower_expr(e.right, env)
        if e.op in ("<<", ">>", ">>>"):
            if isinstance(a, _Unsized):
                a = E.const(a.value, _NATURAL_WIDTH)
            if isinstance(b, _Unsized):
                b = E.const(b.value, max(1, b.value.bit_length()))
            return {"<<": E.shl, ">>": E.lshr, ">>>": E.ashr}[e.op](a, b)
        a, b = self._unify(a, b)
        simple = {
            "+": E.add, "-": E.sub, "*": E.mul,
            "&": E.and_, "|": E.or_, "^": E.xor,
            "==": E.eq, "!=": E.ne, "===": E.eq, "!==": E.ne,
            "<": E.ult, "<=": E.ule, ">": E.ugt, ">=": E.uge,
        }
        if e.op in ("~^", "^~"):
            return E.not_(E.xor(a, b))
        if e.op in simple:
            return simple[e.op](a, b)
        if e.op in ("/", "%"):
            raise ElaborationError(
                "division/modulo on signals is not supported (constant "
                "folding only)", e.line)
        raise ElaborationError(f"unsupported binary operator {e.op!r}",
                               e.line)

    def _lower_call(self, e: ast.Call, env):
        def arg(i: int) -> E.Expr:
            v = self._lower_expr(e.args[i], env)
            if isinstance(v, _Unsized):
                return E.const(v.value, _NATURAL_WIDTH)
            return v

        if e.func == "$countones":
            return E.countones(arg(0))
        if e.func == "$onehot":
            return E.onehot(arg(0))
        if e.func == "$onehot0":
            return E.onehot0(arg(0))
        if e.func == "$signed" or e.func == "$unsigned":
            return arg(0)
        if e.func == "$clog2":
            return _Unsized(self._const_eval(e.args[0]))
        if e.func == "$isunknown":
            return E.false()  # two-state model: never unknown
        raise ElaborationError(f"unsupported system call {e.func!r}",
                               e.line)


def _ast_clock(module: ast.Module, library: dict[str, ast.Module],
               seen: set[str]) -> str | None:
    """Syntactic clock discovery: first edge signal of any clocked process,
    searched recursively through the instance hierarchy."""
    if module.name in seen:
        return None
    seen.add(module.name)
    for ff in module.always_ffs:
        if ff.sensitivity:
            return ff.sensitivity[0].signal
    for inst in module.instances:
        child = library.get(inst.module)
        if child is None:
            continue
        child_clock = _ast_clock(child, library, seen)
        if child_clock is not None:
            conn = inst.connections.get(child_clock)
            if isinstance(conn, ast.Ident):
                return conn.name
    return None
