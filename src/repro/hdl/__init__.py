"""HDL frontend: a synthesizable SystemVerilog subset.

The pipeline is ``source text -> tokens -> module AST -> transition
system``:

* :mod:`repro.hdl.lexer` — tokenizer (identifiers, based literals,
  operators, comments);
* :mod:`repro.hdl.parser` — recursive-descent parser for modules,
  declarations, ``always_ff``/``always_comb``/``assign``, statements and
  expressions;
* :mod:`repro.hdl.elaborate` — elaboration: parameter evaluation, width
  inference, symbolic execution of processes, reset extraction, hierarchy
  flattening, unpacked-array lowering — producing a
  :class:`~repro.ir.system.TransitionSystem`.

Supported constructs are documented in the parser; everything outside the
subset raises a precise :class:`~repro.errors.HdlError` with the source
location.
"""

from repro.hdl.lexer import Token, tokenize
from repro.hdl.parser import parse_module, parse_source
from repro.hdl.elaborate import elaborate

__all__ = ["Token", "elaborate", "parse_module", "parse_source", "tokenize"]
