"""Abstract syntax tree for the SystemVerilog subset.

Plain dataclasses; every node carries its source line for diagnostics.
Expression nodes are shared with the SVA property frontend (which adds its
own sequence layer on top).
"""

from __future__ import annotations

from dataclasses import dataclass, field


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------

@dataclass
class HdlExpr:
    line: int = 0


@dataclass
class Number(HdlExpr):
    value: int = 0
    width: int | None = None  # None: unsized decimal or '0/'1 fill
    is_fill: bool = False     # '0 / '1 literal (expands to context width)


@dataclass
class Ident(HdlExpr):
    name: str = ""


@dataclass
class Unary(HdlExpr):
    op: str = ""          # ! ~ & | ^ ~& ~| ~^ + - (reduction or logical)
    operand: HdlExpr | None = None


@dataclass
class Binary(HdlExpr):
    op: str = ""
    left: HdlExpr | None = None
    right: HdlExpr | None = None


@dataclass
class Ternary(HdlExpr):
    cond: HdlExpr | None = None
    then: HdlExpr | None = None
    other: HdlExpr | None = None


@dataclass
class Concat(HdlExpr):
    parts: list[HdlExpr] = field(default_factory=list)


@dataclass
class Repl(HdlExpr):
    count: HdlExpr | None = None
    operand: HdlExpr | None = None


@dataclass
class Index(HdlExpr):
    """Bit select or array element select: ``base[index]``."""
    base: HdlExpr | None = None
    index: HdlExpr | None = None


@dataclass
class Slice(HdlExpr):
    """Constant part select ``base[msb:lsb]``."""
    base: HdlExpr | None = None
    msb: HdlExpr | None = None
    lsb: HdlExpr | None = None


@dataclass
class Call(HdlExpr):
    """System function call (``$countones`` etc. — SVA layer mostly)."""
    func: str = ""
    args: list[HdlExpr] = field(default_factory=list)


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------

@dataclass
class Stmt:
    line: int = 0


@dataclass
class Block(Stmt):
    stmts: list[Stmt] = field(default_factory=list)
    label: str | None = None


@dataclass
class Assign(Stmt):
    """Procedural assignment; ``blocking`` distinguishes ``=`` from ``<=``."""
    target: HdlExpr | None = None  # Ident, Index, or Slice
    value: HdlExpr | None = None
    blocking: bool = False


@dataclass
class If(Stmt):
    cond: HdlExpr | None = None
    then: Stmt | None = None
    other: Stmt | None = None


@dataclass
class CaseItem:
    labels: list[HdlExpr]          # empty list = default
    body: Stmt
    line: int = 0


@dataclass
class Case(Stmt):
    subject: HdlExpr | None = None
    items: list[CaseItem] = field(default_factory=list)


@dataclass
class NullStmt(Stmt):
    pass


# ---------------------------------------------------------------------------
# Module items
# ---------------------------------------------------------------------------

@dataclass
class Range:
    """Packed range ``[msb:lsb]`` (constant expressions)."""
    msb: HdlExpr
    lsb: HdlExpr


@dataclass
class Port:
    name: str
    direction: str            # "input" | "output" | "inout"
    range_: Range | None
    line: int = 0


@dataclass
class Net:
    """Internal signal declaration (logic/wire/reg)."""
    name: str
    range_: Range | None
    array_range: Range | None = None   # unpacked dimension (memory)
    initial: HdlExpr | None = None
    line: int = 0


@dataclass
class Param:
    name: str
    value: HdlExpr
    local: bool = False
    line: int = 0


@dataclass
class ContinuousAssign:
    target: HdlExpr
    value: HdlExpr
    line: int = 0


@dataclass
class SensItem:
    """One event in a sensitivity list: (edge, signal name)."""
    edge: str   # "posedge" | "negedge"
    signal: str


@dataclass
class AlwaysFF:
    sensitivity: list[SensItem]
    body: Stmt
    line: int = 0


@dataclass
class AlwaysComb:
    body: Stmt
    line: int = 0


@dataclass
class Instance:
    module: str
    name: str
    param_overrides: dict[str, HdlExpr]
    connections: dict[str, HdlExpr]
    line: int = 0
    #: Positional connections (``child c (a, b)``); resolved against the
    #: child's port order during elaboration, then merged into
    #: ``connections``.  Mutually exclusive with named connections.
    positional: list[HdlExpr] = field(default_factory=list)
    #: ``.*`` appeared in the port list: every unconnected child port
    #: binds to the same-named parent signal during elaboration.
    wildcard: bool = False


@dataclass
class Module:
    name: str
    ports: list[Port]
    params: list[Param]
    nets: list[Net]
    assigns: list[ContinuousAssign]
    always_ffs: list[AlwaysFF]
    always_combs: list[AlwaysComb]
    instances: list[Instance]
    line: int = 0

    def port(self, name: str) -> Port | None:
        for p in self.ports:
            if p.name == name:
                return p
        return None
