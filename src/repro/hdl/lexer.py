"""Tokenizer for the SystemVerilog subset (shared with the SVA parser).

Produces a flat token list with line/column positions.  Handles Verilog
based literals (``32'hdead_beef``, ``4'b10_01``, ``'h0``), line and block
comments, and the multi-character operators used by RTL and SVA sources
(including ``|->``, ``|=>`` and ``##`` for the property language).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import LexError

KEYWORDS = frozenset("""
module endmodule input output inout logic wire reg bit signed unsigned
parameter localparam assign always always_ff always_comb always_latch
begin end if else case casez casex endcase default posedge negedge or
and not initial genvar generate endgenerate for integer int unsigned
property endproperty assert assume cover disable iff not sequence
endsequence function endfunction return typedef enum struct packed
unique priority
""".split())

# Longest first so maximal munch works by scanning this list in order.
OPERATORS = [
    "|->", "|=>", "===", "!==", ">>>", "<<<", "##",
    "&&", "||", "==", "!=", "<=", ">=", "<<", ">>", "++", "--", "->",
    "+:", "-:", "~&", "~|", "~^", "^~", "::",
    "+", "-", "*", "/", "%", "&", "|", "^", "~", "!", "<", ">", "=",
    "?", ":", ";", ",", ".", "#", "(", ")", "[", "]", "{", "}", "@", "$",
]


@dataclass(frozen=True)
class Token:
    """One lexical token."""

    kind: str   # "id" | "keyword" | "number" | "string" | "op" | "eof"
    text: str
    line: int
    column: int
    # Parsed payload for numbers: (value, width or None, signed)
    value: int = 0
    width: int | None = None

    def __repr__(self) -> str:
        return f"Token({self.kind}, {self.text!r}, L{self.line})"


def _is_id_start(ch: str) -> bool:
    return ch.isalpha() or ch == "_"


def _is_id_char(ch: str) -> bool:
    return ch.isalnum() or ch in "_$"


_BASES = {"b": 2, "o": 8, "d": 10, "h": 16}


def tokenize(source: str) -> list[Token]:
    """Tokenize HDL/SVA source text."""
    tokens: list[Token] = []
    i = 0
    line = 1
    col = 1
    n = len(source)

    def error(message: str) -> LexError:
        return LexError(message, line, col)

    while i < n:
        ch = source[i]
        # Whitespace ----------------------------------------------------
        if ch == "\n":
            i += 1
            line += 1
            col = 1
            continue
        if ch in " \t\r":
            i += 1
            col += 1
            continue
        # Comments ------------------------------------------------------
        if source.startswith("//", i):
            while i < n and source[i] != "\n":
                i += 1
            continue
        if source.startswith("/*", i):
            end = source.find("*/", i + 2)
            if end < 0:
                raise error("unterminated block comment")
            skipped = source[i:end + 2]
            line += skipped.count("\n")
            if "\n" in skipped:
                col = len(skipped) - skipped.rfind("\n")
            else:
                col += len(skipped)
            i = end + 2
            continue
        # Strings ---------------------------------------------------------
        if ch == '"':
            j = i + 1
            while j < n and source[j] != '"':
                if source[j] == "\n":
                    raise error("unterminated string literal")
                j += 1
            if j >= n:
                raise error("unterminated string literal")
            tokens.append(Token("string", source[i + 1:j], line, col))
            col += j + 1 - i
            i = j + 1
            continue
        # Numbers (including based literals) ------------------------------
        if ch.isdigit() or (ch == "'" and i + 1 < n
                            and (source[i + 1].lower() in "bodh"
                                 or source[i + 1] in "01"
                                 or source[i + 1].lower() == "s")):
            token, consumed = _lex_number(source, i, line, col)
            tokens.append(token)
            col += consumed
            i += consumed
            continue
        # Identifiers / keywords ------------------------------------------
        if _is_id_start(ch):
            j = i
            while j < n and _is_id_char(source[j]):
                j += 1
            # A based literal may follow a plain size: e.g. "32 'b0".
            text = source[i:j]
            kind = "keyword" if text in KEYWORDS else "id"
            tokens.append(Token(kind, text, line, col))
            col += j - i
            i = j
            continue
        # $system identifiers ----------------------------------------------
        if ch == "$" and i + 1 < n and _is_id_start(source[i + 1]):
            j = i + 1
            while j < n and _is_id_char(source[j]):
                j += 1
            tokens.append(Token("id", source[i:j], line, col))
            col += j - i
            i = j
            continue
        # Operators --------------------------------------------------------
        for op in OPERATORS:
            if source.startswith(op, i):
                tokens.append(Token("op", op, line, col))
                col += len(op)
                i += len(op)
                break
        else:
            raise error(f"unexpected character {ch!r}")
    tokens.append(Token("eof", "", line, col))
    return tokens


def _lex_number(source: str, start: int, line: int,
                col: int) -> tuple[Token, int]:
    """Lex a (possibly based, possibly sized) numeric literal."""
    n = len(source)
    i = start
    size: int | None = None
    # Optional size prefix before the base tick.
    if source[i].isdigit():
        j = i
        while j < n and (source[j].isdigit() or source[j] == "_"):
            j += 1
        digits = source[i:j].replace("_", "")
        k = j
        while k < n and source[k] in " \t":
            k += 1
        if k < n and source[k] == "'" and k + 1 < n and \
                (source[k + 1].lower() in "sbodh"):
            size = int(digits)
            i = k
        else:
            # Plain decimal number.
            return (Token("number", source[start:j], line, col,
                          value=int(digits), width=None), j - start)
    # Based literal: 'b / 'h / 'd / 'o with optional s (signed).
    if source[i] != "'":
        raise LexError("malformed number", line, col)
    i += 1
    if i < n and source[i].lower() == "s":
        i += 1  # signedness accepted and ignored (2-state unsigned model)
    if i < n and source[i] in "01" and (i + 1 >= n or
                                        not _is_id_char(source[i + 1])):
        # '0 / '1 fill literals: width comes from context; encode width
        # None and value 0/1; elaboration expands to the target width.
        value = int(source[i])
        text = source[start:i + 1]
        token = Token("number", text, line, col,
                      value=-1 if value else 0, width=size)
        return token, i + 1 - start
    if i >= n or source[i].lower() not in _BASES:
        raise LexError("malformed based literal", line, col)
    base = _BASES[source[i].lower()]
    i += 1
    j = i
    digit_chars = "0123456789abcdefABCDEF_xXzZ?"
    while j < n and source[j] in digit_chars:
        j += 1
    digits = source[i:j].replace("_", "")
    if not digits:
        raise LexError("based literal with no digits", line, col)
    if any(c in "xXzZ?" for c in digits):
        # 2-state model: x/z collapse to 0 (documented substitution).
        digits = "".join("0" if c in "xXzZ?" else c for c in digits)
    value = int(digits, base)
    width = size
    if width is not None:
        value &= (1 << width) - 1
    token = Token("number", source[start:j], line, col,
                  value=value, width=width)
    return token, j - start
