"""Recursive-descent parser for the SystemVerilog subset.

Supported module items:

* ANSI port lists with per-port direction/type/range, plus ``#(parameter
  NAME = value, ...)`` headers;
* ``parameter`` / ``localparam`` declarations;
* ``logic``/``wire``/``reg``/``bit`` declarations with packed ranges,
  optional single unpacked (array/memory) dimension, and declaration
  initializers;
* ``assign`` continuous assignments;
* ``always_ff @(posedge clk [or posedge rst])``, classic
  ``always @(posedge ...)``, ``always_comb`` and ``always @(*)``;
* module instantiation with named port connections and ``#(...)``
  parameter overrides;
* statements: ``begin/end``, ``if/else``, ``case`` (with ``default``),
  blocking/non-blocking assignments, and the ``x++``/``x--`` shorthand
  the paper's Listing 1 uses inside clocked processes.

Expressions cover the usual operator precedence including ternaries,
concatenation/replication, bit/part selects, reductions, and system calls.
Anything outside the subset raises :class:`~repro.errors.ParseError` with
the offending source location.
"""

from __future__ import annotations

from repro.errors import ParseError
from repro.hdl import ast
from repro.hdl.lexer import Token, tokenize


class TokenStream:
    """Cursor over the token list with expectation helpers."""

    def __init__(self, tokens: list[Token]):
        self.tokens = tokens
        self.pos = 0

    def peek(self, offset: int = 0) -> Token:
        index = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def next(self) -> Token:
        token = self.peek()
        if token.kind != "eof":
            self.pos += 1
        return token

    def at(self, kind: str, text: str | None = None) -> bool:
        token = self.peek()
        return token.kind == kind and (text is None or token.text == text)

    def at_op(self, text: str) -> bool:
        return self.at("op", text)

    def at_kw(self, text: str) -> bool:
        return self.at("keyword", text)

    def accept(self, kind: str, text: str | None = None) -> Token | None:
        if self.at(kind, text):
            return self.next()
        return None

    def expect(self, kind: str, text: str | None = None) -> Token:
        token = self.peek()
        if not self.at(kind, text):
            wanted = text if text is not None else kind
            raise ParseError(
                f"expected {wanted!r}, found {token.text!r}",
                token.line, token.column)
        return self.next()

    def error(self, message: str) -> ParseError:
        token = self.peek()
        return ParseError(message, token.line, token.column)


# ---------------------------------------------------------------------------
# Entry points
# ---------------------------------------------------------------------------

def parse_source(source: str) -> list[ast.Module]:
    """Parse all modules in a source string."""
    ts = TokenStream(tokenize(source))
    modules = []
    while not ts.at("eof"):
        modules.append(_parse_module(ts))
    if not modules:
        raise ParseError("no modules found in source")
    return modules


def parse_module(source: str) -> ast.Module:
    """Parse a source string expected to contain exactly one module."""
    modules = parse_source(source)
    if len(modules) != 1:
        raise ParseError(f"expected exactly one module, found {len(modules)}")
    return modules[0]


# ---------------------------------------------------------------------------
# Module structure
# ---------------------------------------------------------------------------

def _parse_module(ts: TokenStream) -> ast.Module:
    start = ts.expect("keyword", "module")
    name = ts.expect("id").text
    params: list[ast.Param] = []
    if ts.accept("op", "#"):
        ts.expect("op", "(")
        while not ts.at_op(")"):
            ts.accept("keyword", "parameter")
            ts.accept("keyword", "int")
            ts.accept("keyword", "integer")
            pname = ts.expect("id").text
            ts.expect("op", "=")
            value = parse_expr(ts)
            params.append(ast.Param(pname, value, local=False,
                                    line=start.line))
            if not ts.accept("op", ","):
                break
        ts.expect("op", ")")
    ports: list[ast.Port] = []
    if ts.accept("op", "("):
        ports = _parse_port_list(ts)
        ts.expect("op", ")")
    ts.expect("op", ";")

    module = ast.Module(name=name, ports=ports, params=params, nets=[],
                        assigns=[], always_ffs=[], always_combs=[],
                        instances=[], line=start.line)
    while not ts.at_kw("endmodule"):
        _parse_module_item(ts, module)
    ts.expect("keyword", "endmodule")
    return module


def _parse_port_list(ts: TokenStream) -> list[ast.Port]:
    ports: list[ast.Port] = []
    direction = "input"
    range_: ast.Range | None = None
    while not ts.at_op(")"):
        token = ts.peek()
        if token.kind == "keyword" and token.text in ("input", "output",
                                                      "inout"):
            direction = ts.next().text
            range_ = None
            _skip_net_type(ts)
            range_ = _try_parse_range(ts)
        elif token.kind == "keyword" and token.text in ("logic", "wire",
                                                        "reg", "bit",
                                                        "signed"):
            _skip_net_type(ts)
            range_ = _try_parse_range(ts) or range_
        name_token = ts.expect("id")
        ports.append(ast.Port(name_token.text, direction, range_,
                              line=name_token.line))
        if not ts.accept("op", ","):
            break
    return ports


def _skip_net_type(ts: TokenStream) -> None:
    while ts.peek().kind == "keyword" and ts.peek().text in (
            "logic", "wire", "reg", "bit", "signed", "unsigned"):
        ts.next()


def _try_parse_range(ts: TokenStream) -> ast.Range | None:
    if not ts.at_op("["):
        return None
    ts.expect("op", "[")
    msb = parse_expr(ts)
    ts.expect("op", ":")
    lsb = parse_expr(ts)
    ts.expect("op", "]")
    return ast.Range(msb, lsb)


def _parse_module_item(ts: TokenStream, module: ast.Module) -> None:
    token = ts.peek()
    if token.kind == "keyword":
        text = token.text
        if text in ("parameter", "localparam"):
            _parse_param_decl(ts, module)
            return
        if text in ("logic", "wire", "reg", "bit", "integer", "int"):
            _parse_net_decl(ts, module)
            return
        if text in ("input", "output", "inout"):
            # Non-ANSI port declarations re-stating direction inside body.
            ts.next()
            _skip_net_type(ts)
            range_ = _try_parse_range(ts)
            while True:
                name = ts.expect("id").text
                port = module.port(name)
                if port is not None:
                    port.range_ = range_ or port.range_
                if not ts.accept("op", ","):
                    break
            ts.expect("op", ";")
            return
        if text == "assign":
            line = ts.next().line
            target = _parse_lvalue(ts)
            ts.expect("op", "=")
            value = parse_expr(ts)
            ts.expect("op", ";")
            module.assigns.append(ast.ContinuousAssign(target, value, line))
            return
        if text in ("always_ff", "always"):
            _parse_always(ts, module)
            return
        if text == "always_comb":
            line = ts.next().line
            body = _parse_stmt(ts)
            module.always_combs.append(ast.AlwaysComb(body, line))
            return
        if text == "initial":
            raise ts.error("initial blocks are not supported; use reset "
                           "logic or declaration initializers")
        raise ts.error(f"unsupported module item {text!r}")
    if token.kind == "id":
        _parse_instance(ts, module)
        return
    raise ts.error(f"unexpected token {token.text!r} in module body")


def _parse_param_decl(ts: TokenStream, module: ast.Module) -> None:
    keyword = ts.next()
    local = keyword.text == "localparam"
    ts.accept("keyword", "int")
    ts.accept("keyword", "integer")
    _try_parse_range(ts)
    while True:
        name = ts.expect("id").text
        ts.expect("op", "=")
        value = parse_expr(ts)
        module.params.append(ast.Param(name, value, local=local,
                                       line=keyword.line))
        if not ts.accept("op", ","):
            break
    ts.expect("op", ";")


def _parse_net_decl(ts: TokenStream, module: ast.Module) -> None:
    first = ts.next()  # logic / wire / reg / bit / integer / int
    _skip_net_type(ts)
    if first.text in ("integer", "int"):
        range_: ast.Range | None = ast.Range(
            ast.Number(line=first.line, value=31), ast.Number(value=0))
    else:
        range_ = _try_parse_range(ts)
    while True:
        name_token = ts.expect("id")
        array_range = _try_parse_range(ts)
        initial = None
        if ts.accept("op", "="):
            initial = parse_expr(ts)
        # A declared name that matches a port refines the port's range.
        port = module.port(name_token.text)
        if port is not None and port.range_ is None:
            port.range_ = range_
        module.nets.append(ast.Net(name_token.text, range_, array_range,
                                   initial, line=name_token.line))
        if not ts.accept("op", ","):
            break
    ts.expect("op", ";")


def _parse_always(ts: TokenStream, module: ast.Module) -> None:
    keyword = ts.next()  # always / always_ff
    ts.expect("op", "@")
    if ts.accept("op", "("):
        if ts.accept("op", "*"):
            ts.expect("op", ")")
            body = _parse_stmt(ts)
            module.always_combs.append(ast.AlwaysComb(body, keyword.line))
            return
        sensitivity = []
        while True:
            edge_token = ts.peek()
            if edge_token.kind == "keyword" and edge_token.text in (
                    "posedge", "negedge"):
                ts.next()
                signal = ts.expect("id").text
                sensitivity.append(ast.SensItem(edge_token.text, signal))
            else:
                raise ts.error(
                    "only edge-triggered sensitivity lists are supported "
                    "in clocked processes (use always_comb for logic)")
            if not (ts.accept("keyword", "or") or ts.accept("op", ",")):
                break
        ts.expect("op", ")")
        body = _parse_stmt(ts)
        module.always_ffs.append(ast.AlwaysFF(sensitivity, body,
                                              keyword.line))
        return
    raise ts.error("malformed always block")


def _parse_instance(ts: TokenStream, module: ast.Module) -> None:
    mod_name = ts.expect("id").text
    param_overrides: dict[str, ast.HdlExpr] = {}
    if ts.accept("op", "#"):
        ts.expect("op", "(")
        while not ts.at_op(")"):
            ts.expect("op", ".")
            pname = ts.expect("id").text
            ts.expect("op", "(")
            param_overrides[pname] = parse_expr(ts)
            ts.expect("op", ")")
            if not ts.accept("op", ","):
                break
        ts.expect("op", ")")
    inst_token = ts.expect("id")
    ts.expect("op", "(")
    connections: dict[str, ast.HdlExpr] = {}
    positional: list[ast.HdlExpr] = []
    wildcard = False
    while not ts.at_op(")"):
        if ts.accept("op", "."):
            if ts.accept("op", "*"):            # .* wildcard
                wildcard = True
            else:
                port_name = ts.expect("id").text
                if port_name in connections:
                    raise ts.error(
                        f"port {port_name!r} connected twice on "
                        f"instance {inst_token.text!r}")
                if ts.accept("op", "("):        # .port(expr)
                    connections[port_name] = parse_expr(ts)
                    ts.expect("op", ")")
                else:                           # .port shorthand (.name)
                    connections[port_name] = ast.Ident(
                        name=port_name, line=inst_token.line)
        else:                                   # positional connection
            positional.append(parse_expr(ts))
        if not ts.accept("op", ","):
            break
    ts.expect("op", ")")
    ts.expect("op", ";")
    if positional and (connections or wildcard):
        raise ts.error(
            f"instance {inst_token.text!r} mixes positional and named "
            "(or .*) port connections")
    module.instances.append(ast.Instance(mod_name, inst_token.text,
                                         param_overrides, connections,
                                         line=inst_token.line,
                                         positional=positional,
                                         wildcard=wildcard))


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------

def _parse_stmt(ts: TokenStream) -> ast.Stmt:
    token = ts.peek()
    if ts.accept("keyword", "begin"):
        label = None
        if ts.accept("op", ":"):
            label = ts.expect("id").text
        stmts = []
        while not ts.at_kw("end"):
            stmts.append(_parse_stmt(ts))
        ts.expect("keyword", "end")
        if ts.accept("op", ":"):
            ts.expect("id")
        return ast.Block(stmts=stmts, label=label, line=token.line)
    if ts.accept("keyword", "if"):
        ts.expect("op", "(")
        cond = parse_expr(ts)
        ts.expect("op", ")")
        then = _parse_stmt(ts)
        other = None
        if ts.accept("keyword", "else"):
            other = _parse_stmt(ts)
        return ast.If(cond=cond, then=then, other=other, line=token.line)
    if ts.at_kw("case") or ts.at_kw("unique") or ts.at_kw("priority"):
        ts.accept("keyword", "unique")
        ts.accept("keyword", "priority")
        ts.expect("keyword", "case")
        ts.expect("op", "(")
        subject = parse_expr(ts)
        ts.expect("op", ")")
        items: list[ast.CaseItem] = []
        while not ts.at_kw("endcase"):
            item_line = ts.peek().line
            if ts.accept("keyword", "default"):
                ts.accept("op", ":")
                body = _parse_stmt(ts)
                items.append(ast.CaseItem([], body, line=item_line))
                continue
            labels = [parse_expr(ts)]
            while ts.accept("op", ","):
                labels.append(parse_expr(ts))
            ts.expect("op", ":")
            body = _parse_stmt(ts)
            items.append(ast.CaseItem(labels, body, line=item_line))
        ts.expect("keyword", "endcase")
        return ast.Case(subject=subject, items=items, line=token.line)
    if ts.accept("op", ";"):
        return ast.NullStmt(line=token.line)
    # Assignment (blocking, non-blocking, or increment/decrement sugar).
    target = _parse_lvalue(ts)
    if ts.accept("op", "++") or ts.accept("op", "--"):
        op = ts.tokens[ts.pos - 1].text
        ts.expect("op", ";")
        one = ast.Number(value=1, width=None, line=token.line)
        rhs = ast.Binary(op="+" if op == "++" else "-", left=target,
                         right=one, line=token.line)
        return ast.Assign(target=target, value=rhs, blocking=False,
                          line=token.line)
    if ts.accept("op", "<="):
        value = parse_expr(ts)
        ts.expect("op", ";")
        return ast.Assign(target=target, value=value, blocking=False,
                          line=token.line)
    if ts.accept("op", "="):
        value = parse_expr(ts)
        ts.expect("op", ";")
        return ast.Assign(target=target, value=value, blocking=True,
                          line=token.line)
    raise ts.error("expected assignment statement")


def _parse_lvalue(ts: TokenStream) -> ast.HdlExpr:
    name_token = ts.expect("id")
    expr: ast.HdlExpr = ast.Ident(name=name_token.text,
                                  line=name_token.line)
    while ts.at_op("["):
        ts.expect("op", "[")
        first = parse_expr(ts)
        if ts.accept("op", ":"):
            second = parse_expr(ts)
            ts.expect("op", "]")
            expr = ast.Slice(base=expr, msb=first, lsb=second,
                             line=name_token.line)
        else:
            ts.expect("op", "]")
            expr = ast.Index(base=expr, index=first, line=name_token.line)
    return expr


# ---------------------------------------------------------------------------
# Expressions (precedence climbing)
# ---------------------------------------------------------------------------

_BINARY_LEVELS = [
    ["||"],
    ["&&"],
    ["|"],
    ["^", "~^", "^~"],
    ["&"],
    ["==", "!=", "===", "!=="],
    ["<", "<=", ">", ">="],
    ["<<", ">>", ">>>"],
    ["+", "-"],
    ["*", "/", "%"],
]

_UNARY_OPS = ("!", "~", "&", "|", "^", "~&", "~|", "~^", "-", "+")


def parse_expr(ts: TokenStream) -> ast.HdlExpr:
    return _parse_ternary(ts)


def _parse_ternary(ts: TokenStream) -> ast.HdlExpr:
    cond = _parse_binary(ts, 0)
    if ts.accept("op", "?"):
        then = _parse_ternary(ts)
        ts.expect("op", ":")
        other = _parse_ternary(ts)
        return ast.Ternary(cond=cond, then=then, other=other,
                           line=cond.line)
    return cond


def _parse_binary(ts: TokenStream, level: int) -> ast.HdlExpr:
    if level >= len(_BINARY_LEVELS):
        return _parse_unary(ts)
    left = _parse_binary(ts, level + 1)
    ops = _BINARY_LEVELS[level]
    while ts.peek().kind == "op" and ts.peek().text in ops:
        op = ts.next().text
        right = _parse_binary(ts, level + 1)
        left = ast.Binary(op=op, left=left, right=right, line=left.line)
    return left


def _parse_unary(ts: TokenStream) -> ast.HdlExpr:
    token = ts.peek()
    if token.kind == "op" and token.text in _UNARY_OPS:
        ts.next()
        operand = _parse_unary(ts)
        return ast.Unary(op=token.text, operand=operand, line=token.line)
    return _parse_postfix(ts)


def _parse_postfix(ts: TokenStream) -> ast.HdlExpr:
    expr = _parse_primary(ts)
    while ts.at_op("["):
        ts.expect("op", "[")
        first = parse_expr(ts)
        if ts.accept("op", ":"):
            second = parse_expr(ts)
            ts.expect("op", "]")
            expr = ast.Slice(base=expr, msb=first, lsb=second,
                             line=expr.line)
        else:
            ts.expect("op", "]")
            expr = ast.Index(base=expr, index=first, line=expr.line)
    return expr


def _parse_primary(ts: TokenStream) -> ast.HdlExpr:
    token = ts.peek()
    if token.kind == "number":
        ts.next()
        is_fill = token.text.startswith("'") and token.text[1:] in ("0", "1")
        return ast.Number(value=token.value, width=token.width,
                          is_fill=is_fill, line=token.line)
    if token.kind == "id":
        ts.next()
        if token.text.startswith("$"):
            args = []
            if ts.accept("op", "("):
                while not ts.at_op(")"):
                    args.append(parse_expr(ts))
                    if not ts.accept("op", ","):
                        break
                ts.expect("op", ")")
            return ast.Call(func=token.text, args=args, line=token.line)
        name = token.text
        # Hierarchical references (flattened instances use dotted names).
        while ts.at_op(".") and ts.peek(1).kind == "id":
            ts.next()
            name += "." + ts.expect("id").text
        return ast.Ident(name=name, line=token.line)
    if ts.accept("op", "("):
        inner = parse_expr(ts)
        ts.expect("op", ")")
        return inner
    if ts.accept("op", "{"):
        first = parse_expr(ts)
        if ts.at_op("{"):
            # Replication {N{expr}}.
            ts.expect("op", "{")
            operand = parse_expr(ts)
            ts.expect("op", "}")
            ts.expect("op", "}")
            return ast.Repl(count=first, operand=operand, line=token.line)
        parts = [first]
        while ts.accept("op", ","):
            parts.append(parse_expr(ts))
        ts.expect("op", "}")
        return ast.Concat(parts=parts, line=token.line)
    raise ts.error(f"unexpected token {token.text!r} in expression")
