"""Command-line interface.

Subcommands::

    repro-verify list                         # designs and properties
    repro-verify verify DESIGN [PROP ...]     # batch portfolio verification
                        [--jobs N] [--strategy SPEC[+SPEC...]]
                        [--cache-dir DIR]
    repro-verify campaign [DESIGN ...]        # cross-design campaign over
                        [--jobs N]            # the persistent proof store
                        [--workers N]         # ... across N worker processes
                        [--worker-jobs N]     # ... each with a local pool
                        [--backend sqlite:DIR | http://HOST:PORT]
                        [--cache-dir DIR] [--no-adaptive] [--json PATH]
                        [--trace DIR]         # span trace of the whole run
                        [--events DIR]        # structured event journal
                        [--slow-solve S]      # slow-solve event threshold
                        [--corpus DIR]        # + every AIGER/BTOR2 file
                                              #   under DIR as a design
    repro-verify fuzz   [--seed N] [--count N]  # differential fuzzing:
                        [--budget SECONDS]    # race every engine on random
                        [--out DIR]           # designs, shrink + bundle any
                        [--replay DIR]        # disagreement; replay a bundle
    repro-verify export DESIGN                # serialize a design (with
                        [--format aiger|btor2|blif]   # compiled monitors)
                        [--binary] [-o FILE]  # as an interchange file
    repro-verify status --backend SPEC        # live backend snapshot
                        [--metrics]           # + Prometheus metrics text
                        [--watch SECONDS]     # refresh until interrupted
    repro-verify top    --backend SPEC        # refreshing fleet view:
                        [--interval S] [--once]  # queue depth, per-worker
                        [--events DIR]        # stats, wedged-worker alarm
    repro-verify explain DESIGN PROP          # reconstruct a verdict's
                        --backend SPEC        # story from the effort
                        [--events DIR]        # ledger + event journal
    repro-verify serve  [--cache-dir DIR]     # host the queue + proof store
                        [--host H] [--port P] # over HTTP for other machines
                        [--events DIR]        # journal queue forensics
    repro-verify worker --backend SPEC        # standalone campaign worker
                        [--id ID] [--lease S] [--idle-timeout S] [--jobs N]
    repro-verify prove  DESIGN PROP [--max-k] # plain k-induction
    repro-verify bmc    DESIGN PROP [--bound]
    repro-verify repair DESIGN PROP [--model] # Fig. 2 flow
    repro-verify lemma  DESIGN [--model]      # Fig. 1 flow
    repro-verify wave   DESIGN PROP           # show the step CEX waveform
    repro-verify models                       # available personas
    repro-verify strategies                   # registered check strategies

(Also available as ``python -m repro ...``.)
"""

from __future__ import annotations

import argparse
import sys

from repro.designs import all_designs, get_design
from repro.errors import ReproError
from repro.flow import VerificationSession, run_campaign
from repro.genai import get_persona, list_personas
from repro.mc import Status, get_strategy, resolve_strategy, strategy_names
from repro.report import Table
from repro.trace.wave import render_for_prompt


def _split_strategies(arg: str) -> list[str] | None:
    """Parse a ``--strategy`` value ('portfolio' means the default race)."""
    if arg == "portfolio":
        return None
    strategies = [s.strip() for s in arg.split("+")]
    for spec in strategies:
        resolve_strategy(spec)  # report bad specs before running
    return strategies


def _cmd_list(args: argparse.Namespace) -> int:
    table = Table(["design", "family", "property", "expected",
                   "needs helper"], title="built-in design suite")
    for design in all_designs():
        for prop in design.properties:
            table.add_row(design.name, design.family, prop.name,
                          prop.expect, "yes" if prop.needs_helper else "")
    print(table.to_text())
    return 0


def _cmd_models(args: argparse.Namespace) -> int:
    table = Table(["model", "vendor", "recall", "hallucination", "junk"],
                  title="simulated LLM personas")
    for name in list_personas():
        persona = get_persona(name)
        table.add_row(persona.name, persona.vendor,
                      f"{persona.recall:.2f}",
                      f"{persona.hallucination_rate:.2f}",
                      f"{persona.extra_junk:.1f}")
    print(table.to_text())
    return 0


def _cmd_strategies(args: argparse.Namespace) -> int:
    table = Table(["strategy", "proves", "refutes"],
                  title="registered check strategies")
    for name in strategy_names():
        strategy = get_strategy(name)
        table.add_row(name, "yes" if strategy.can_prove else "",
                      "yes" if strategy.can_refute else "")
    print(table.to_text())
    return 0


def _cmd_verify(args: argparse.Namespace) -> int:
    design = get_design(args.design)
    session = VerificationSession(design, cache_dir=args.cache_dir,
                                  backend=args.backend)
    strategies = _split_strategies(args.strategy)
    result = session.verify_all(
        properties=args.properties or None, jobs=args.jobs,
        strategies=strategies, max_k=args.max_k, bmc_bound=args.bound)
    print("\n".join(result.summary_lines()))
    # Exit status reflects verdict vs expectation: a VIOLATED verdict on
    # an expect=proven property (or a missed expect=violated one) fails.
    failures = 0
    for outcome in result.outcomes:
        expect = design.property_spec(outcome.property_name).expect
        if expect == "unknown":      # corpus file without ground truth
            continue
        violated = outcome.status is Status.VIOLATED
        if violated != (expect == "violated"):
            failures += 1
            print(f"  MISMATCH: {outcome.property_name} expected "
                  f"{expect}, got {outcome.status.value}")
    return 0 if failures == 0 else 1


def _cmd_prove(args: argparse.Namespace) -> int:
    session = VerificationSession(get_design(args.design))
    result = session.prove_direct(args.property, max_k=args.max_k)
    print(result.one_line())
    return 0 if result.status is Status.PROVEN else 1


def _cmd_bmc(args: argparse.Namespace) -> int:
    session = VerificationSession(get_design(args.design))
    result = session.bmc(args.property, bound=args.bound)
    print(result.one_line())
    if result.cex is not None:
        from repro.trace.wave import render_wave
        print(render_wave(result.cex))
    return 0 if result.status is not Status.VIOLATED else 1


def _cmd_export(args: argparse.Namespace) -> int:
    from repro.formats import export_design

    design = get_design(args.design)
    payload = export_design(design, args.format, binary=args.binary)
    data = payload if isinstance(payload, bytes) else payload.encode()
    if args.output and args.output != "-":
        with open(args.output, "wb") as handle:
            handle.write(data)
        print(f"wrote {len(data)} bytes of {args.format} "
              f"({len(design.properties)} properties) to {args.output}")
    else:
        sys.stdout.buffer.write(data)
        sys.stdout.buffer.flush()
    return 0


def _cmd_fuzz(args: argparse.Namespace) -> int:
    from repro.qa import DifferentialOracle, replay_bundle, run_fuzz

    strategies = None
    if args.strategy != "oracle":
        strategies = _split_strategies(args.strategy)
    oracle = DifferentialOracle(strategies)

    if args.replay:
        try:
            report = replay_bundle(args.replay, oracle)
        except FileNotFoundError as exc:
            raise ReproError(str(exc)) from exc
        for verdict in report.verdicts:
            print(f"  {verdict.strategy}: {verdict.status}")
        if report.ok:
            print("bundle replay: no disagreement reproduced")
            return 1
        for d in report.disagreements:
            print("  " + d.one_line())
        print(f"bundle replay: {len(report.disagreements)} "
              "disagreement(s) reproduced")
        return 0

    report = run_fuzz(seed=args.seed, count=args.count,
                      budget=args.budget, out_dir=args.out,
                      oracle=oracle, shrink=not args.no_shrink)
    print(f"fuzzed {report.designs_checked} designs from seed "
          f"{args.seed} in {report.elapsed_seconds:.1f}s "
          f"({report.designs_per_second:.1f} designs/sec)")
    print(f"  disagreements: {report.disagreements}  "
          f"shrink steps: {report.shrink_steps}")
    if report.budget_exhausted:
        print(f"  budget of {args.budget:g}s exhausted early")
    for record in report.records:
        print(f"  {record.design_name} (seed {record.seed}):")
        for d in record.disagreements:
            print("    " + d.one_line())
        if record.bundle_dir:
            print(f"    repro bundle: {record.bundle_dir}")
    if args.verbose:
        for note in report.notes:
            print("  note: " + note)
    return 0 if report.disagreements == 0 else 1


def _cmd_campaign(args: argparse.Namespace) -> int:
    designs = list(args.designs)
    if args.corpus:
        import os

        from repro.designs import load_corpus
        from repro.designs.registry import CORPUS_ENV

        designs += [d.name for d in load_corpus(args.corpus)]
        # Publish the corpus root so spawned workers (which resolve
        # designs by name in their own process) find the files too.
        roots = [args.corpus] + [
            r for r in os.environ.get(CORPUS_ENV, "").split(os.pathsep)
            if r]
        os.environ[CORPUS_ENV] = os.pathsep.join(dict.fromkeys(roots))
    report = run_campaign(
        designs=designs or None, cache_dir=args.cache_dir,
        jobs=args.jobs, strategies=_split_strategies(args.strategy),
        adaptive=not args.no_adaptive, min_samples=args.min_samples,
        max_k=args.max_k, bmc_bound=args.bound, workers=args.workers,
        lease_seconds=args.lease, wall_timeout=args.wall_timeout,
        backend=args.backend, worker_jobs=args.worker_jobs,
        trace_dir=args.trace, events_dir=args.events,
        slow_solve_seconds=args.slow_solve)
    print(report.to_text())
    if args.trace:
        print(f"  trace {report.trace_id} written to {args.trace} "
              f"(render with scripts/trace_report.py)")
    if args.events:
        print(f"  event journal written to {args.events} "
              f"(dig with `repro-verify explain DESIGN PROP`)")
    if args.json_path:
        rendered = report.to_json()
        if args.json_path == "-":
            print(rendered)
        else:
            with open(args.json_path, "w") as handle:
                handle.write(rendered + "\n")
    for row in report.rows:
        if row.mismatch:
            print(f"  MISMATCH: {row.design}.{row.property_name} "
                  f"expected {row.expect}, got {row.status}")
    return 0 if report.mismatches == 0 else 1


def _cmd_worker(args: argparse.Namespace) -> int:
    from repro.dist import Worker
    backend = args.backend if args.backend is not None else args.cache_dir
    if backend is None:
        raise ValueError(
            "a worker needs a rendezvous: pass --backend sqlite:DIR, "
            "--backend http://HOST:PORT, or --cache-dir DIR")
    worker = Worker(backend, worker_id=args.id,
                    lease_seconds=args.lease,
                    poll_interval=args.poll_interval,
                    idle_timeout=args.idle_timeout,
                    max_jobs=args.max_jobs,
                    jobs=args.jobs)
    done = worker.run()
    print(f"worker {worker.worker_id}: completed {done} jobs")
    return 0


def _resolve_backend_arg(args: argparse.Namespace, what: str):
    backend = args.backend if args.backend is not None else args.cache_dir
    if backend is None:
        raise ValueError(
            f"{what} needs a target: pass --backend sqlite:DIR, "
            "--backend http://HOST:PORT, or --cache-dir DIR")
    from repro.dist.backend import parse_backend
    return parse_backend(backend)


def _worker_table(snapshot: list[dict]) -> Table:
    """Per-worker throughput table from a queue worker snapshot."""
    table = Table(["worker", "jobs", "busy (s)", "jobs/s", "beat age",
                   "current job", "job age"], title="workers")
    for w in snapshot:
        busy = w.get("busy_seconds") or 0.0
        jobs = w.get("jobs_done") or 0
        rate = f"{jobs / busy:.2f}" if busy > 0 else "-"
        job_age = w.get("job_age_seconds")
        table.add_row(
            w.get("worker_id", "?"), jobs, f"{busy:.3f}", rate,
            f"{w.get('heartbeat_age_seconds', 0.0):.1f}s",
            w.get("current_job") or "-",
            f"{job_age:.1f}s" if job_age is not None else "-")
    return table


def _cmd_status(args: argparse.Namespace) -> int:
    import time

    resolved = _resolve_backend_arg(args, "status")
    while True:
        if resolved.is_remote:
            code = _remote_status(resolved.location, args)
        else:
            code = _local_status(resolved, args)
        if not args.watch:
            return code
        try:
            time.sleep(args.watch)
        except KeyboardInterrupt:
            return code
        print(f"\n--- {time.strftime('%H:%M:%S')} "
              f"(refreshing every {args.watch:g}s, Ctrl-C to stop) ---")


def _remote_status(base_url: str, args: argparse.Namespace) -> int:
    import json
    import urllib.error
    import urllib.request

    base = base_url.rstrip("/")
    try:
        with urllib.request.urlopen(base + "/health",
                                    timeout=10) as resp:
            health = json.loads(resp.read())
    except urllib.error.HTTPError as exc:
        body = exc.read().decode(errors="replace")
        print(f"backend {base}: HTTP {exc.code} — {body.strip()}")
        return 1
    except (urllib.error.URLError, OSError, ValueError) as exc:
        print(f"error: backend {base} unreachable: {exc}",
              file=sys.stderr)
        return 1
    counts = health.get("queue", {}).get("counts", {})
    unavailable = health.get("unavailable_503", {})
    print(f"backend {base}: {health.get('status', '?')}, "
          f"up {health.get('uptime_seconds', 0.0):.1f}s")
    print(f"  cache dir: {health.get('cache_dir', '?')}")
    print(f"  queue: state={health.get('queue', {}).get('state', '?')}, "
          f"pending={counts.get('pending', 0)}, "
          f"leased={counts.get('leased', 0)}, "
          f"done={counts.get('done', 0)}")
    print(f"  store: {health.get('store', {}).get('results', 0)} "
          f"results, {health.get('store', {}).get('history', 0)} "
          f"history rows")
    print(f"  503s served: shutdown={unavailable.get('shutdown', 0)}, "
          f"lock_contention={unavailable.get('lock_contention', 0)}")
    from repro.dist.remote import RemoteWorkQueue, _REMOTE_ERRORS
    try:
        snapshot = RemoteWorkQueue(base).worker_snapshot()
    except _REMOTE_ERRORS:
        snapshot = []
    if snapshot:
        print(_worker_table(snapshot).to_text())
    if args.metrics:
        try:
            with urllib.request.urlopen(base + "/metrics",
                                        timeout=10) as resp:
                print(resp.read().decode(errors="replace"), end="")
        except (urllib.error.URLError, OSError) as exc:
            print(f"error: /metrics unreachable: {exc}",
                  file=sys.stderr)
            return 1
    return 0


def _local_status(resolved, args: argparse.Namespace) -> int:
    from repro.dist.backend import open_queue, open_store
    queue = open_queue(resolved)
    store = open_store(resolved)
    try:
        counts = queue.counts()
        print(f"backend {resolved.spec()}")
        print(f"  queue: state={queue.state()}, "
              f"pending={counts.get('pending', 0)}, "
              f"leased={counts.get('leased', 0)}, "
              f"done={counts.get('done', 0)}")
        print(f"  store: {len(store)} results, "
              f"{store.history_size()} history rows")
        snapshot = queue.worker_snapshot()
        if snapshot:
            print(_worker_table(snapshot).to_text())
        if args.metrics:
            from repro.obs import metrics
            print(metrics.get_registry().render(), end="")
    finally:
        queue.close()
        store.close()
    return 0


def _parse_metrics_text(text: str) -> dict[str, float]:
    """Prometheus exposition text -> {'name{labels}': value}."""
    values: dict[str, float] = {}
    for line in text.splitlines():
        if not line or line.startswith("#"):
            continue
        name, _, value = line.rpartition(" ")
        try:
            values[name] = float(value)
        except ValueError:
            continue
    return values


def _fetch_remote_metrics(base_url: str) -> dict[str, float]:
    import urllib.error
    import urllib.request

    try:
        with urllib.request.urlopen(base_url.rstrip("/") + "/metrics",
                                    timeout=10) as resp:
            return _parse_metrics_text(resp.read().decode(
                errors="replace"))
    except (urllib.error.URLError, OSError):
        return {}


def _wedged_workers(snapshot: list[dict], lease: float,
                    factor: float) -> list[tuple[dict, float]]:
    """The `top` wedged-worker heuristic.

    A worker is flagged when its heartbeat is alive (age within twice
    the lease horizon — the queue has not written it off) yet it has
    held one job for more than ``factor`` times the fleet's median
    per-job solve time: the classic signature of a solver stuck inside
    one SAT call, which heartbeats alone can never detect.  Returns
    ``(worker, threshold)`` pairs.
    """
    per_job = sorted(
        w["busy_seconds"] / w["jobs_done"]
        for w in snapshot if w.get("jobs_done"))
    if not per_job:
        return []
    median = per_job[len(per_job) // 2]
    # Floor at one lease horizon: with a handful of sub-second warmup
    # jobs the median alone would flag every normal solve.
    threshold = max(factor * median, lease)
    flagged = []
    for w in snapshot:
        age = w.get("job_age_seconds")
        alive = w.get("heartbeat_age_seconds", 0.0) <= 2 * lease
        if alive and age is not None and age > threshold:
            flagged.append((w, threshold))
    return flagged


def _top_snapshot(resolved, queue, store,
                  args: argparse.Namespace) -> list[str]:
    import time

    counts = queue.counts()
    state = queue.state()
    snapshot = queue.worker_snapshot()
    lines = [
        f"repro-verify top — {resolved.spec()} — "
        f"{time.strftime('%H:%M:%S')}",
        f"  queue: state={state}, pending={counts.get('pending', 0)}, "
        f"leased={counts.get('leased', 0)}, "
        f"done={counts.get('done', 0)}",
        f"  store: {len(store)} results",
    ]
    if resolved.is_remote:
        metrics = _fetch_remote_metrics(resolved.location)
        claimed = metrics.get(
            'repro_queue_claims_total{result="claimed"}', 0)
        accepted = metrics.get(
            'repro_queue_completions_total{result="accepted"}', 0)
        beats = metrics.get("repro_queue_heartbeats_total", 0)
        lines.append(
            f"  service: {claimed:g} claims, {accepted:g} completions, "
            f"{beats:g} heartbeats "
            f"(up {metrics.get('repro_service_uptime_seconds', 0):g}s)")
    if snapshot:
        lines.append(_worker_table(snapshot).to_text())
    else:
        lines.append("  (no workers registered)")
    for worker, threshold in _wedged_workers(snapshot, args.lease,
                                             args.wedged_factor):
        lines.append(
            f"  WEDGED? {worker['worker_id']} has held "
            f"{worker['current_job']} for "
            f"{worker['job_age_seconds']:.1f}s "
            f"(> {threshold:.1f}s = {args.wedged_factor:g}x median "
            f"solve) while still heartbeating")
        from repro.obs import events as _events
        _events.emit("worker_wedged", worker=worker["worker_id"],
                     job_id=worker["current_job"],
                     job_age_seconds=round(
                         worker["job_age_seconds"], 3),
                     threshold_seconds=round(threshold, 3))
    return lines


def _cmd_top(args: argparse.Namespace) -> int:
    import time

    resolved = _resolve_backend_arg(args, "top")
    if args.events:
        from repro.obs import events as _events
        if _events.active() is None:
            _events.configure(args.events)
    from repro.dist.backend import open_queue, open_store
    queue = open_queue(resolved)
    store = open_store(resolved)
    try:
        while True:
            try:
                lines = _top_snapshot(resolved, queue, store, args)
            except Exception as exc:
                lines = [f"backend {resolved.spec()} unreachable: "
                         f"{type(exc).__name__}: {exc}"]
                if args.once:
                    print("\n".join(lines), file=sys.stderr)
                    return 1
            if not args.once:
                print("\x1b[2J\x1b[H", end="")   # clear + home
            print("\n".join(lines))
            if args.once:
                return 0
            try:
                time.sleep(args.interval)
            except KeyboardInterrupt:
                return 0
    finally:
        queue.close()
        store.close()


def _format_effort(effort: dict) -> str:
    parts = []
    for key in ("conflicts", "propagations", "sat_queries"):
        value = effort.get(key)
        if value:
            parts.append(f"{value} {key}")
    return ", ".join(parts) if parts else "no solver effort"


def _cmd_explain(args: argparse.Namespace) -> int:
    import time

    resolved = _resolve_backend_arg(args, "explain")
    from repro.dist.backend import open_store
    store = open_store(resolved)
    try:
        entry = store.ledger_entry(args.design, args.property)
    finally:
        store.close()
    if entry is None:
        print(f"no ledger entry for {args.design}.{args.property} on "
              f"{resolved.spec()} — run a campaign against this "
              f"backend first (ledgers are recorded per campaign "
              f"verdict)", file=sys.stderr)
        return 1
    provenance_story = {
        "engine": "solved fresh by the engine",
        "store": "answered from the proof store (no solver ran)",
        "seeded": "a seeded-lemma strategy won the race "
                  "(GenAI-assisted proof)",
    }.get(entry["provenance"], entry["provenance"] or "unknown")
    print(f"{args.design}.{args.property}: {entry['status']}")
    print(f"  provenance: {entry['provenance']} — {provenance_story}")
    print(f"  winner: {entry['strategy']} (k={entry['k']}) in "
          f"{entry['wall_seconds']:.3f}s")
    origin = "proof store / cache" if entry["from_cache"] else "solver"
    print(f"  origin: {origin}" +
          (", after an adaptive full-portfolio fallback rerun"
           if entry["fallback"] else ""))
    if entry["worker"]:
        print(f"  worker: {entry['worker']}")
    if entry.get("recorded"):
        print(f"  recorded: "
              f"{time.strftime('%Y-%m-%d %H:%M:%S', time.localtime(entry['recorded']))}")
    attempts = entry.get("attempts") or []
    if attempts:
        table = Table(["strategy", "origin", "status", "winner",
                       "solve (s)", "effort"],
                      title=f"effort ledger ({len(attempts)} strategy "
                            f"slots raced)")
        for a in attempts:
            effort = a.get("effort") or {}
            solve = effort.get("solve_seconds")
            table.add_row(
                a.get("strategy", "?"), a.get("origin", "?"),
                a.get("status") or "-",
                "<- winner" if a.get("winner") else "",
                f"{solve:.3f}" if solve is not None else "-",
                _format_effort(effort))
        print(table.to_text())
    else:
        print("  (no per-strategy attempt rows recorded)")
    if args.events:
        from repro.obs import events as _events

        def _matches(event: dict) -> bool:
            # Check-level events name the *compiled scoped system*
            # ("design+monitors#coi"), job/campaign events the registry
            # design — accept both spellings of the same design.
            named = event.get("design", "")
            if named != args.design and \
                    not named.startswith(args.design + "+"):
                return False
            return event.get("property") == args.property

        relevant = [e for e in _events.load_events(args.events)
                    if _matches(e)]
        if relevant:
            print(f"journal ({len(relevant)} events in {args.events}):")
            for e in relevant:
                stamp = time.strftime("%H:%M:%S",
                                      time.localtime(e.get("ts", 0)))
                detail = ", ".join(
                    f"{k}={v}" for k, v in sorted(e.items())
                    if k not in ("ts", "kind", "host", "pid", "design",
                                 "property", "trace_id", "span_id"))
                print(f"  {stamp} {e['kind']}: {detail}")
        else:
            print(f"journal: no events for {args.design}."
                  f"{args.property} under {args.events}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.dist import ProofService
    if args.events:
        # The queue runs in THIS process under the HTTP backend, so
        # queue_claim/queue_requeue forensics land here, not in the
        # campaign coordinator's journal.  Point both at one shared
        # directory to get a single merged timeline.
        from repro.obs import events as _events
        _events.configure(args.events)
    service = ProofService(cache_dir=args.cache_dir, host=args.host,
                           port=args.port)
    if args.cache_dir is None:
        print("serving from a scratch directory: queue and proof store "
              "are lost when this process exits (pass --cache-dir to "
              "survive restarts)")
    print(f"serving work queue + proof store at {service.address}")
    print(f"  campaign: repro-verify campaign --backend "
          f"{service.address} --workers N")
    print(f"  workers:  repro-verify worker --backend {service.address}")
    try:
        service.serve_forever()
    except KeyboardInterrupt:
        print("shutting down")
    finally:
        service.close()
    return 0


def _cmd_repair(args: argparse.Namespace) -> int:
    session = VerificationSession(get_design(args.design),
                                  model=args.model, seed=args.seed,
                                  cache_dir=args.cache_dir)
    result = session.repair(args.property)
    print("\n".join(result.summary_lines()))
    for outcome in result.outcomes:
        print("  " + outcome.one_line())
    return 0 if result.converged else 1


def _cmd_lemma(args: argparse.Namespace) -> int:
    session = VerificationSession(get_design(args.design),
                                  model=args.model, seed=args.seed,
                                  cache_dir=args.cache_dir)
    result = session.lemma_flow()
    print("\n".join(result.summary_lines()))
    for outcome in result.outcomes:
        print("  " + outcome.one_line())
    return 0


def _cmd_wave(args: argparse.Namespace) -> int:
    session = VerificationSession(get_design(args.design))
    result = session.prove_direct(args.property)
    print(result.one_line())
    if result.step_cex is not None:
        print()
        print(render_for_prompt(result.step_cex))
        return 0
    print("no induction-step counterexample to show")
    return 1


def _add_cache_dir(p: argparse.ArgumentParser) -> None:
    p.add_argument("--cache-dir", default=None,
                   help="directory of the persistent proof store; runs "
                        "read and write the same store campaigns use")


def _add_backend(p: argparse.ArgumentParser) -> None:
    p.add_argument("--backend", default=None,
                   help="where the proof store (and work queue) lives: "
                        "'sqlite:DIR' for an on-disk store, or "
                        "'http://HOST:PORT' for a repro-verify serve "
                        "instance; overrides --cache-dir")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-verify",
        description="GenAI-augmented induction-based formal verification "
                    "(SOCC 2024 reproduction)")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list designs and properties") \
        .set_defaults(func=_cmd_list)
    sub.add_parser("models", help="list simulated LLM personas") \
        .set_defaults(func=_cmd_models)
    sub.add_parser("strategies", help="list registered check strategies") \
        .set_defaults(func=_cmd_strategies)

    p = sub.add_parser(
        "verify",
        help="batch-verify properties via the portfolio scheduler")
    p.add_argument("design")
    p.add_argument("properties", nargs="*",
                   help="property names (default: all of the design)")
    p.add_argument("--jobs", type=int, default=1,
                   help="worker processes for the parallel scheduler")
    p.add_argument("--strategy", default="portfolio",
                   help="'portfolio' (default: race k_induction + bmc) or "
                        "'+'-joined strategy specs, e.g. "
                        "'k_induction(max_k=3)+bmc(bound=12)' or "
                        "'pdr+bmc' (see `repro-verify strategies`)")
    p.add_argument("--max-k", type=int, default=None)
    p.add_argument("--bound", type=int, default=None,
                   help="BMC bound for the default portfolio refuter")
    _add_cache_dir(p)
    _add_backend(p)
    p.set_defaults(func=_cmd_verify)

    p = sub.add_parser(
        "campaign",
        help="cross-design campaign with persistent proof store and "
             "adaptive strategy selection")
    p.add_argument("designs", nargs="*",
                   help="design names (default: every built-in design)")
    p.add_argument("--jobs", type=int, default=1,
                   help="global worker-process limit across all designs")
    p.add_argument("--workers", type=int, default=0,
                   help="dispatch the job pool across N worker "
                        "processes through the shared work queue "
                        "(0 = run in-process)")
    p.add_argument("--worker-jobs", type=int, default=1,
                   help="process-pool size inside each spawned worker: "
                        "one claimed job's strategy race fans out "
                        "across this many local processes")
    p.add_argument("--lease", type=float, default=15.0,
                   help="distributed lease/heartbeat horizon in "
                        "seconds: a worker silent this long forfeits "
                        "its job")
    p.add_argument("--wall-timeout", type=float, default=None,
                   help="abort a distributed campaign after this many "
                        "seconds (guards against a worker wedged "
                        "inside a single solve, which heartbeats "
                        "cannot detect)")
    p.add_argument("--strategy", default="portfolio",
                   help="'portfolio' (default) or '+'-joined specs")
    p.add_argument("--no-adaptive", action="store_true",
                   help="always race the full portfolio (no history "
                        "mining)")
    p.add_argument("--min-samples", type=int, default=3,
                   help="settled outcomes a family needs before "
                        "adaptive selection trusts its history")
    p.add_argument("--max-k", type=int, default=None,
                   help="induction depth override (default: per "
                        "property)")
    p.add_argument("--bound", type=int, default=None,
                   help="BMC bound for portfolio refuters")
    p.add_argument("--json", dest="json_path", default=None,
                   help="write the JSON report here ('-' for stdout)")
    p.add_argument("--trace", default=None, metavar="DIR",
                   help="capture a span trace of the run into DIR "
                        "(JSONL per process; render with "
                        "scripts/trace_report.py)")
    p.add_argument("--events", default=None, metavar="DIR",
                   help="capture the structured event journal into DIR "
                        "(JSONL per process: check/job/queue/campaign "
                        "lifecycle; dig with `repro-verify explain`)")
    p.add_argument("--slow-solve", type=float, default=None,
                   metavar="SECONDS",
                   help="journal a full solver-effort snapshot for any "
                        "check slower than this (default: 30s; needs "
                        "--events)")
    p.add_argument("--corpus", default=None, metavar="DIR",
                   help="also campaign over every AIGER/BTOR2 file "
                        "under DIR (loaded via the corpus importer; "
                        "designs are named by relative path)")
    _add_cache_dir(p)
    _add_backend(p)
    p.set_defaults(func=_cmd_campaign)

    p = sub.add_parser(
        "fuzz",
        help="differential fuzzing: generate random designs, race every "
             "registered engine, cross-check traces and certificates, "
             "shrink any disagreement to a replayable repro bundle")
    p.add_argument("--seed", type=int, default=0,
                   help="base seed; the whole campaign is deterministic "
                        "in it (default: 0)")
    p.add_argument("--count", type=int, default=100,
                   help="designs to generate and oracle (default: 100)")
    p.add_argument("--budget", type=float, default=None,
                   help="wall-clock cap in seconds; stops early once "
                        "exceeded")
    p.add_argument("--out", default=None, metavar="DIR",
                   help="write shrunk repro bundles (design.aag + "
                        "repro.json per disagreement) under DIR")
    p.add_argument("--replay", default=None, metavar="DIR",
                   help="instead of fuzzing, replay the repro bundle in "
                        "DIR; exit 0 iff the disagreement reproduces")
    p.add_argument("--strategy", default="oracle",
                   help="'oracle' (default: bmc, k_induction, pdr, "
                        "pdr_seeded, external) or '+'-joined specs")
    p.add_argument("--no-shrink", action="store_true",
                   help="report disagreements without delta-debugging "
                        "them")
    p.add_argument("--verbose", action="store_true",
                   help="also print per-design oracle notes")
    p.set_defaults(func=_cmd_fuzz)

    p = sub.add_parser(
        "export",
        help="serialize a design plus its compiled property monitors "
             "as AIGER (.aag/.aig), BTOR2, or BLIF")
    p.add_argument("design")
    p.add_argument("--format", default="aiger",
                   choices=["aiger", "btor2", "blif"],
                   help="interchange format (default: aiger)")
    p.add_argument("--binary", action="store_true",
                   help="binary AIGER (.aig) instead of ascii (.aag); "
                        "aiger format only")
    p.add_argument("-o", "--output", default=None,
                   help="output file (default: stdout)")
    p.set_defaults(func=_cmd_export)

    p = sub.add_parser(
        "status",
        help="live snapshot of a backend: queue depth, store size, "
             "worker throughput, 503 breakdown (and --metrics for the "
             "full Prometheus dump)")
    p.add_argument("--cache-dir", default=None,
                   help="shared directory holding the work queue and "
                        "proof store (same as --backend sqlite:DIR)")
    _add_backend(p)
    p.add_argument("--metrics", action="store_true",
                   help="also print the Prometheus metrics text "
                        "(GET /metrics on http backends)")
    p.add_argument("--watch", type=float, default=None,
                   metavar="SECONDS",
                   help="re-print the snapshot every SECONDS until "
                        "interrupted (Ctrl-C)")
    p.set_defaults(func=_cmd_status)

    p = sub.add_parser(
        "top",
        help="refreshing fleet view of a backend: queue depth, "
             "per-worker throughput and lease ages, wedged-worker "
             "detection (heartbeat alive but one job held far past "
             "the fleet's median solve time)")
    p.add_argument("--cache-dir", default=None,
                   help="shared directory holding the work queue and "
                        "proof store (same as --backend sqlite:DIR)")
    _add_backend(p)
    p.add_argument("--interval", type=float, default=2.0,
                   help="refresh period in seconds (default: 2)")
    p.add_argument("--once", action="store_true",
                   help="print one snapshot and exit (scripts, CI)")
    p.add_argument("--lease", type=float, default=15.0,
                   help="the fleet's lease horizon, for the liveness "
                        "half of the wedged heuristic (default: 15)")
    p.add_argument("--wedged-factor", type=float, default=10.0,
                   help="flag a worker holding one job longer than "
                        "this many times the median per-job solve "
                        "time (default: 10)")
    p.add_argument("--events", default=None, metavar="DIR",
                   help="journal worker_wedged warning events into "
                        "DIR when the heuristic fires")
    p.set_defaults(func=_cmd_top)

    p = sub.add_parser(
        "explain",
        help="reconstruct the story of one verdict from the effort "
             "ledger: which strategies raced, what each cost, which "
             "won, and whether the answer came from the engine, the "
             "proof store, or a seeded-lemma assist")
    p.add_argument("design")
    p.add_argument("property")
    p.add_argument("--cache-dir", default=None,
                   help="directory of the proof store the campaign "
                        "wrote (same as --backend sqlite:DIR)")
    _add_backend(p)
    p.add_argument("--events", default=None, metavar="DIR",
                   help="also print this (design, property)'s timeline "
                        "from the event journal in DIR")
    p.set_defaults(func=_cmd_explain)

    p = sub.add_parser(
        "worker",
        help="run one standalone campaign worker against a shared "
             "backend (see `campaign --workers` and `serve`)")
    p.add_argument("--cache-dir", default=None,
                   help="shared directory holding the work queue and "
                        "proof store (same as --backend sqlite:DIR)")
    _add_backend(p)
    p.add_argument("--id", default=None,
                   help="worker id (default: derived from hostname "
                        "and pid; must be unique across all joined "
                        "machines)")
    p.add_argument("--lease", type=float, default=15.0,
                   help="lease/heartbeat horizon in seconds")
    p.add_argument("--poll-interval", type=float, default=0.2,
                   help="seconds between claim attempts when idle")
    p.add_argument("--idle-timeout", type=float, default=60.0,
                   help="exit after this many idle seconds — no "
                        "claimable work or no reachable backend (the "
                        "coordinator-closed queue also ends the worker)")
    p.add_argument("--max-jobs", type=int, default=None,
                   help="exit after completing this many jobs")
    p.add_argument("--jobs", type=int, default=1,
                   help="process-pool size inside this worker: each "
                        "claimed job's strategy race fans out across "
                        "this many local processes")
    p.set_defaults(func=_cmd_worker)

    p = sub.add_parser(
        "serve",
        help="host the work queue + proof store over HTTP so "
             "campaigns and workers on other machines can join "
             "(--backend http://HOST:PORT)")
    p.add_argument("--cache-dir", default=None,
                   help="directory for the backing SQLite files; reuse "
                        "it across restarts to resume in-flight "
                        "campaigns (default: a scratch directory)")
    p.add_argument("--host", default="127.0.0.1",
                   help="bind address (use 0.0.0.0 to accept other "
                        "machines — trusted networks only: the wire "
                        "protocol is pickle and unauthenticated)")
    p.add_argument("--port", type=int, default=7333,
                   help="bind port (0 picks an ephemeral port)")
    p.add_argument("--events", default=None, metavar="DIR",
                   help="journal this service's structured events "
                        "(queue claims/requeues, failed requests) "
                        "into DIR; share the campaign's --events DIR "
                        "for one merged timeline")
    p.set_defaults(func=_cmd_serve)

    p = sub.add_parser("prove", help="k-induction without GenAI")
    p.add_argument("design")
    p.add_argument("property")
    p.add_argument("--max-k", type=int, default=None)
    p.set_defaults(func=_cmd_prove)

    p = sub.add_parser("bmc", help="bounded model checking")
    p.add_argument("design")
    p.add_argument("property")
    p.add_argument("--bound", type=int, default=20)
    p.set_defaults(func=_cmd_bmc)

    p = sub.add_parser("repair", help="Fig. 2 induction-repair flow")
    p.add_argument("design")
    p.add_argument("property")
    p.add_argument("--model", default="gpt-4o")
    p.add_argument("--seed", type=int, default=0)
    _add_cache_dir(p)
    p.set_defaults(func=_cmd_repair)

    p = sub.add_parser("lemma", help="Fig. 1 lemma-generation flow")
    p.add_argument("design")
    p.add_argument("--model", default="gpt-4o")
    p.add_argument("--seed", type=int, default=0)
    _add_cache_dir(p)
    p.set_defaults(func=_cmd_lemma)

    p = sub.add_parser("wave", help="show an induction-step CEX waveform")
    p.add_argument("design")
    p.add_argument("property")
    p.set_defaults(func=_cmd_wave)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except (ReproError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
