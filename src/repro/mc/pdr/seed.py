"""Frame seeding: externally suggested invariants for the PDR engine.

The paper's thesis — generated lemmas strengthen induction-based proofs
— applies twice over to IC3/PDR, whose frames are *made of* candidate
invariants.  This module gathers candidate predicates from three
sources and normalizes them into the only shape the frame trapezoid can
hold, width-1 expressions over the system's **state** variables:

* **explicit SVA bodies** (the ``seeds=(...)`` strategy option) — e.g.
  helper assertions a user or an LLM flow already produced;
* **static synthesis** (``seed_static=True``) — the
  :class:`~repro.genai.synthesis.static_engine.StaticSynthesizer`
  candidate generator run directly on the design (symmetric registers,
  one-hot shapes, mined affine relations, ...), i.e. the simulated-LLM
  analysis the Fig. 1 flow uses, feeding PDR instead of Houdini;
* **the campaign proof store** (``seed_store_dir=...``) — invariant
  certificates from earlier *proven* PDR results
  (:meth:`~repro.campaign.store.ProofStore.invariant_payloads`), so a
  warm campaign hands each new run the strengthenings its predecessors
  already discovered.

Everything returned here is still a *candidate*: the engine's
admission checks (``init → p`` and ``init ∧ T → p'``) decide membership
of frame 1, and ordinary consecution decides how far each seed
propagates.  A wrong seed costs two SAT probes; it can never unsound
the proof.

Normalization rules: a candidate is dropped when it fails to parse,
needs monitor state (``$past`` chains — frames are single-state), has a
warm-up offset, mentions inputs or unknown signals, or is constant.
"""

from __future__ import annotations

from repro.errors import HdlError, PropertyError
from repro.ir import expr as E
from repro.ir.system import TransitionSystem


def gather_seed_predicates(system: TransitionSystem,
                           seeds: tuple[str, ...] = (),
                           static: bool = False,
                           store_dir: str | None = None,
                           limit: int = 16) -> list[E.Expr]:
    """All seed predicates for one run, deduplicated, capped at ``limit``.

    Order encodes priority: explicit seeds first, then store-mined
    invariants (already proven somewhere), then static-synthesis
    candidates (heuristic).
    """
    out: list[E.Expr] = []
    out += compile_seed_predicates(system, list(seeds))
    if store_dir is not None:
        out += store_seed_predicates(store_dir, system)
    if static:
        out += static_seed_predicates(system)
    seen: set[int] = set()
    unique: list[E.Expr] = []
    for pred in out:
        if id(pred) not in seen:      # exprs are interned: id == identity
            seen.add(id(pred))
            unique.append(pred)
    return unique[:limit]


def compile_seed_predicates(system: TransitionSystem,
                            svas: list[str]) -> list[E.Expr]:
    """Compile SVA bodies into state predicates (see module docstring).

    Candidates that fail to parse, resolve, or normalize are silently
    dropped — seeding is best-effort by contract.
    """
    from repro.sva.compile import MonitorContext

    out: list[E.Expr] = []
    for text in svas:
        try:
            ctx = MonitorContext(system)
            prop = ctx.add(text, name="seed")
        except (PropertyError, HdlError):
            continue
        if prop.valid_from > 0 or \
                len(ctx.system.states) != len(system.states):
            continue  # needs monitor state: not a single-state predicate
        good = system.resolve_defines(E.not_(prop.bad))
        if _usable_state_predicate(good, system):
            out.append(good)
    return out


def static_seed_predicates(system: TransitionSystem,
                           spec_text: str = "",
                           max_candidates: int = 12,
                           sim_runs: int = 3,
                           sim_cycles: int = 24,
                           seed: int = 0) -> list[E.Expr]:
    """Candidate predicates from the static synthesis engine.

    Runs the same analytical core the simulated-LLM personas sample
    from, with a lighter simulation budget than the flows use — seeds
    only need to be *plausible*; the admission probes are the filter.
    """
    from repro.genai.synthesis import StaticSynthesizer

    try:
        synthesizer = StaticSynthesizer(system, spec_text=spec_text,
                                        seed=seed, sim_runs=sim_runs,
                                        sim_cycles=sim_cycles)
        candidates = synthesizer.candidates(max_candidates=max_candidates)
    except Exception:
        return []  # a design the synthesizer cannot simulate seeds nothing
    return compile_seed_predicates(system, [c.sva for c in candidates])


def store_seed_predicates(store_dir: str, system: TransitionSystem,
                          limit: int = 64) -> list[E.Expr]:
    """Invariant conjuncts mined from a campaign proof store.

    Every proven result in the store that carries a PDR invariant
    certificate contributes its conjuncts; only those that type-check
    against *this* system's state variables (same names, same widths)
    survive — certificates from unrelated designs filter out naturally.
    The store degrades rather than raises, matching the cache-tier
    contract: an unreadable store seeds nothing.
    """
    from repro.campaign.store import ProofStore

    try:
        store = ProofStore.open(store_dir)
    except Exception:
        return []
    try:
        payloads = store.invariant_payloads(limit=limit)
    finally:
        try:
            store.close()
        except Exception:
            pass
    out: list[E.Expr] = []
    for conjuncts in payloads:
        for pred in conjuncts:
            if isinstance(pred, E.Expr) and \
                    _usable_state_predicate(pred, system):
                out.append(pred)
    return out


def _usable_state_predicate(pred: E.Expr,
                            system: TransitionSystem) -> bool:
    """Width-1, non-constant, and every variable is a state register
    of ``system`` at the matching width (inputs are per-cycle free
    choices — a frame over them would claim nothing about states)."""
    if pred.width != 1 or pred.is_const:
        return False
    variables = [node for node in E.iter_dag([pred]) if node.is_var]
    if not variables:
        return False
    for node in variables:
        state = system.states.get(node.name)
        if state is None or state.width != node.width:
            return False
    return True
