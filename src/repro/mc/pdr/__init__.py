"""Property-directed reachability (IC3/PDR).

The third proof engine next to BMC and k-induction: instead of
unrolling, it maintains inductive frames and blocks counterexamples to
induction one cube at a time (:mod:`repro.mc.pdr.engine`).  Registered
with the strategy registry as ``pdr`` and ``pdr_seeded`` (frames
pre-seeded with GenAI-synthesized and store-mined candidate lemmas —
see :mod:`repro.mc.pdr.seed`), so every scheduling layer — portfolio
races, campaigns, adaptive selection, distributed workers, and the CLI
— gains the engine through the registry with no engine-specific code.
"""

from repro.mc.pdr.engine import AGE_STATE, PdrOptions, pdr
from repro.mc.pdr.frames import FrameMember, FrameTrapezoid, PdrContext
from repro.mc.pdr.obligations import (Obligation, ObligationQueue,
                                      generalize_clause)
from repro.mc.pdr.seed import (compile_seed_predicates,
                               gather_seed_predicates,
                               static_seed_predicates,
                               store_seed_predicates)

__all__ = [
    "AGE_STATE",
    "FrameMember",
    "FrameTrapezoid",
    "Obligation",
    "ObligationQueue",
    "PdrContext",
    "PdrOptions",
    "compile_seed_predicates",
    "gather_seed_predicates",
    "generalize_clause",
    "pdr",
    "static_seed_predicates",
    "store_seed_predicates",
]
