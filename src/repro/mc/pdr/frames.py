"""The PDR frame trapezoid over one incremental SAT context.

Property-directed reachability keeps a monotone chain of *frames*
``F_0 ⊆ F_1 ⊆ ... ⊆ F_K`` as state sets (``F_0 = init``, each ``F_i``
over-approximates the states reachable in at most ``i`` steps); as
*clause sets* the containment runs the other way — an outer frame
holds a subset of the inner frames' clauses.  This module owns both
halves of that machinery:

* :class:`PdrContext` — a single incremental
  :class:`~repro.sat.solver.Solver` holding **one** unrolled step
  (transition ``0 → 1`` plus the time-0 environment constraints).  All
  PDR queries are solved here under assumptions: per-*level* activation
  literals select which frames participate, time-1 cube literals pose
  "is this state reachable in one step", and throwaway activation
  literals guard the temporary ``¬cube`` clause of a relative-induction
  query.  Nothing is ever retracted from the solver — retired guards
  are pinned false so learnt clauses survive every query (the
  retraction pattern ``tests/test_sat.py`` covers).

* :class:`FrameTrapezoid` — the Python-side ledger of frame *members*
  in delta encoding: a member stored at level ``i`` belongs to every
  frame ``F_1 .. F_i``.  Members are either **blocking clauses**
  (disjunctions of state-register bit literals, discovered by the
  engine's obligation blocking) or **seeded predicates** (arbitrary
  width-1 expressions over state variables, admitted by
  :mod:`repro.mc.pdr.seed` after the level-1 admission checks).
  :meth:`FrameTrapezoid.propagate` pushes members outward after each
  new frame and reports the fixpoint level when two adjacent frames
  coincide — the proof certificate.

Level 0 is special: the initial-state equations are themselves guarded
by the level-0 activation literal, so a query "relative to ``F_0``"
simply assumes it — no separate init solver exists.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.aig.bitblast import BitBlaster
from repro.aig.cnf import CnfBuilder
from repro.ir import expr as E
from repro.ir.system import TransitionSystem
from repro.mc.result import ProofStats
from repro.mc.unroll import Unroller, timed_name
from repro.sat.solver import Solver

#: One cube/clause literal: register ``name`` bit ``bit`` has ``value``.
#: A *cube* is a conjunction of such literals (a set of states); a
#: *blocking clause* is a disjunction (its negation blocks a cube).
BitLit = tuple[str, int, int]

Cube = tuple[BitLit, ...]


def negate_cube(cube: Cube) -> tuple[BitLit, ...]:
    """The clause blocking ``cube``: every literal flipped."""
    return tuple((name, bit, 1 - value) for name, bit, value in cube)


def _unbudgeted() -> None:
    """Default budget supplier: no per-probe conflict limit."""
    return None


@dataclass(frozen=True)
class FrameMember:
    """One element of a frame: a blocking clause or a seeded predicate.

    Exactly one of ``clause``/``pred`` is set.  ``seeded`` marks members
    admitted from external candidates (GenAI synthesis or the proof
    store) rather than discovered by obligation blocking.
    """

    clause: tuple[BitLit, ...] | None = None
    pred: E.Expr | None = None
    seeded: bool = False

    def blocks(self, cube_map: dict[tuple[str, int], int]) -> bool:
        """Syntactic check: does this clause block the (full) cube?

        True iff every clause literal is falsified by the cube — i.e.
        the cube lies entirely inside the region the clause forbids.
        Predicates never answer syntactically (the solver decides).
        """
        if self.clause is None:
            return False
        return all(cube_map.get((name, bit)) == 1 - value
                   for name, bit, value in self.clause)

    def describe(self) -> str:
        if self.pred is not None:
            return E.to_sexpr(self.pred, max_depth=4)
        return " | ".join(
            f"{'!' if value == 0 else ''}{name}[{bit}]"
            for name, bit, value in self.clause)


class PdrContext:
    """Shared incremental solver state for every PDR query on one system.

    The context asserts the one-step transition relation and the time-0
    environment constraints once; everything else — frames, init, cubes,
    temporary blocking clauses — rides on assumption literals.  Time-1
    constraints are deliberately **not** asserted: the trace semantics
    (matching BMC) require constraints only up to the cycle under
    examination, and successor cubes were themselves discovered under
    their own time-0 constraints.
    """

    def __init__(self, system: TransitionSystem):
        system.validate()
        self.system = system
        self.unroller = Unroller(system)
        self.solver = Solver()
        self.blaster = BitBlaster()
        self.cnf = CnfBuilder(self.blaster.aig, self.solver)
        self.queries = 0
        self._state_bits: dict[tuple[str, int], list[int]] = {}
        for eq in self.unroller.transition(0):
            self._assert(eq)
        for cond in self.unroller.constraints_at(0):
            self._assert(cond)
        # Force state bits at both times so cube literals and model
        # extraction never depend on which registers the transition
        # happens to read.
        for name, v in system.states.items():
            for t in (0, 1):
                self._state_bits[(name, t)] = self.blaster.blast(
                    E.var(timed_name(name, t), v.width))

    # ------------------------------------------------------------------
    # Low-level plumbing
    # ------------------------------------------------------------------

    def _assert(self, timed_expr: E.Expr) -> None:
        self.cnf.assert_lit(self.blaster.blast_bool(timed_expr))

    def new_guard(self) -> int:
        """A fresh activation variable (assume +guard to enable)."""
        return self.solver.add_var()

    def retire_guard(self, guard: int) -> None:
        """Permanently disable a guard: its clauses become satisfied."""
        self.solver.add_clause([-guard])

    def guarded_expr(self, guard: int, expr: E.Expr, t: int) -> None:
        """Assert ``guard -> expr@t`` (expr untimed, resolved, width 1)."""
        lit = self.blaster.blast_bool(self.unroller.at_time(expr, t))
        self.solver.add_clause([-guard, self.cnf.lit_to_dimacs(lit)])

    def guarded_clause(self, guard: int, clause: tuple[BitLit, ...],
                       t: int) -> None:
        """Assert ``guard -> (⋁ literals)@t`` over state bits."""
        self.solver.add_clause(
            [-guard] + [self.bit_dimacs(name, bit, value, t)
                        for name, bit, value in clause])

    def expr_assumption(self, expr: E.Expr, t: int) -> int:
        """Assumption literal for an untimed width-1 expression at ``t``."""
        lit = self.blaster.blast_bool(self.unroller.at_time(expr, t))
        return self.cnf.assumption(lit)

    def bit_dimacs(self, name: str, bit: int, value: int, t: int) -> int:
        """DIMACS literal asserting state bit ``name[bit] == value@t``."""
        aig_lit = self._state_bits[(name, t)][bit]
        d = self.cnf.lit_to_dimacs(aig_lit)
        return d if value else -d

    def cube_assumptions(self, cube: Cube, t: int) -> list[int]:
        return [self.bit_dimacs(name, bit, value, t)
                for name, bit, value in cube]

    def state_bit_lits(self, name: str, t: int) -> list[int]:
        """The AIG literals of state ``name``'s bits at time ``t``."""
        return list(self._state_bits[(name, t)])

    def solve(self, assumptions: list[int],
              conflict_budget: int | None = None) -> bool | None:
        self.cnf.encode_new_nodes()
        self.queries += 1
        if conflict_budget is None:
            return self.solver.solve(assumptions)
        return self.solver.solve_limited(assumptions,
                                         conflict_budget=conflict_budget)

    # ------------------------------------------------------------------
    # Model extraction (valid immediately after a SAT answer)
    # ------------------------------------------------------------------

    def state_cube(self, t: int = 0) -> Cube:
        """The full state assignment at time ``t`` as a cube."""
        lits: list[BitLit] = []
        for name in self.system.states:
            bits = self._state_bits[(name, t)]
            for i, aig_lit in enumerate(bits):
                lits.append((name, i, int(self.cnf.lit_value(aig_lit))))
        return tuple(lits)

    def frame_env(self, t: int = 0) -> dict[str, int]:
        """Input + state word values at time ``t`` (for trace frames)."""
        env: dict[str, int] = {}
        for name, v in list(self.system.inputs.items()) + \
                list(self.system.states.items()):
            bits = self.blaster.var_bits(timed_name(name, t))
            if bits is None:
                env[name] = 0  # never blasted: unconstrained
            else:
                env[name] = self.cnf.bits_value(bits)
        return env

    def stats_snapshot(self) -> ProofStats:
        return ProofStats.from_solver(self.solver.stats, self.queries)


class FrameTrapezoid:
    """Delta-encoded frames ``F_0 .. F_K`` over a :class:`PdrContext`.

    ``levels[i]`` holds the members whose *highest* frame is ``F_i``;
    frame ``F_j`` is the conjunction of init (j == 0 only) and every
    member at a level ``>= j``.  Each level owns one activation literal;
    a query relative to ``F_j`` assumes the activation literals of
    levels ``j..K``.  Pushing a member outward re-asserts it under the
    next level's activation literal — the superseded copy stays in the
    solver (it is implied) and keeps its learnt consequences alive.
    """

    def __init__(self, ctx: PdrContext,
                 lemmas: list[E.Expr] | None = None):
        """``lemmas`` are already-proven invariant expressions (resolved,
        width 1, possibly warm-up-gated by the engine), asserted
        permanently at both ends of the step — frame strengthening that
        is sound because lemmas hold in every reachable state."""
        self.ctx = ctx
        self.levels: list[list[FrameMember]] = [[], []]  # F_0, F_1
        self._acts: list[int] = [ctx.new_guard(), ctx.new_guard()]
        for good in (lemmas or []):
            for t in (0, 1):
                ctx._assert(ctx.unroller.at_time(good, t))
        # F_0 is the initial states, guarded by the level-0 literal.
        init_guard = self._acts[0]
        for eq in ctx.unroller.init_constraints():
            ctx.solver.add_clause(
                [-init_guard,
                 ctx.cnf.lit_to_dimacs(ctx.blaster.blast_bool(eq))])

    # ------------------------------------------------------------------

    @property
    def top(self) -> int:
        return len(self.levels) - 1

    def add_frame(self) -> None:
        self.levels.append([])
        self._acts.append(self.ctx.new_guard())

    def activation(self, level: int) -> list[int]:
        """Assumption literals selecting frame ``F_level``."""
        return self._acts[level:]

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------

    def add_member(self, member: FrameMember, level: int) -> None:
        """Install ``member`` at ``level`` (it joins ``F_1 .. F_level``).

        Clause members are subsumption-checked both ways: a new clause
        already implied by an equal-or-stronger clause covering at least
        the same frames is skipped outright, and weaker clauses it
        supersedes are dropped from the ledger (their solver copies stay
        — implied clauses are harmless there — but the Python-side scans
        in :meth:`blocks_syntactically` and :meth:`propagate` stop
        paying for them).
        """
        if not (1 <= level <= self.top):
            raise ValueError(f"level {level} outside 1..{self.top}")
        if member.clause is not None:
            new_lits = set(member.clause)
            for lvl in range(level, self.top + 1):
                for old in self.levels[lvl]:
                    if old.clause is not None and \
                            set(old.clause) <= new_lits:
                        return  # subsumed by a stronger, wider member
            for lvl in range(1, level + 1):
                self.levels[lvl] = [
                    old for old in self.levels[lvl]
                    if old.clause is None
                    or not new_lits <= set(old.clause)]
        self._assert_at_level(member, level)
        self.levels[level].append(member)

    def _assert_at_level(self, member: FrameMember, level: int) -> None:
        guard = self._acts[level]
        if member.pred is not None:
            self.ctx.guarded_expr(guard, member.pred, t=0)
        else:
            self.ctx.guarded_clause(guard, member.clause, t=0)

    def blocks_syntactically(self, cube: Cube, level: int) -> bool:
        """Is ``cube`` already excluded from ``F_level`` by some clause?"""
        cube_map = {(name, bit): value for name, bit, value in cube}
        return any(member.blocks(cube_map)
                   for lvl in range(level, self.top + 1)
                   for member in self.levels[lvl])

    # ------------------------------------------------------------------
    # Outward propagation + fixpoint detection
    # ------------------------------------------------------------------

    def _holds_after_step(self, member: FrameMember, level: int,
                          budget: int | None = None) -> bool | None:
        """Consecution probe: ``F_level ∧ T → member'`` ?

        Returns True when the member can move to ``level + 1``; None
        when an optional conflict budget ran out (treated as "no").
        """
        ctx = self.ctx
        assumptions = list(self.activation(level))
        if member.pred is not None:
            assumptions.append(ctx.expr_assumption(E.not_(member.pred), 1))
        else:
            assumptions += ctx.cube_assumptions(
                negate_cube(member.clause), 1)
        verdict = ctx.solve(assumptions, conflict_budget=budget)
        if verdict is None:
            return None
        return not verdict

    def propagate(self, budget_fn=None) -> int | None:
        """Push members outward; return the fixpoint level if one forms.

        For each level ``1 .. top-1`` in order, every member that still
        satisfies consecution relative to its own level moves up one.
        If some level empties, ``F_level == F_level+1`` and the frames
        above it form an inductive invariant: that level is returned.
        ``budget_fn`` supplies each probe's conflict budget (and serves
        as the engine's run-budget checkpoint); a probe whose budget
        dies simply keeps its member in place, which is always sound.
        """
        if budget_fn is None:
            budget_fn = _unbudgeted
        for level in range(1, self.top):
            kept: list[FrameMember] = []
            for member in self.levels[level]:
                if self._holds_after_step(member, level,
                                          budget=budget_fn()) is True:
                    self._assert_at_level(member, level + 1)
                    self.levels[level + 1].append(member)
                else:
                    kept.append(member)
            self.levels[level] = kept
            if not kept:
                return level
        return None

    def invariant_members(self, fixpoint_level: int) -> list[FrameMember]:
        """The members of the inductive frame above ``fixpoint_level``."""
        out: list[FrameMember] = []
        for level in range(fixpoint_level + 1, self.top + 1):
            out.extend(self.levels[level])
        return out

    def member_exprs(self, members: list[FrameMember]) -> list[E.Expr]:
        """Frame members as width-1 expressions over the state variables."""
        out = []
        for member in members:
            if member.pred is not None:
                out.append(member.pred)
                continue
            disjuncts = []
            for name, bit, value in member.clause:
                b = E.bit(self.ctx.system.states[name], bit)
                disjuncts.append(b if value else E.not_(b))
            out.append(E.bool_or(*disjuncts))
        return out
