"""Ternary-simulation cube lifting for PDR predecessor cubes.

A SAT consecution query hands the engine one concrete predecessor state
— a full assignment to every state bit.  Blocking full-assignment cubes
one state at a time is hopeless on wide datapaths: a 32-bit counter
equality has on the order of ``2^64`` predecessor states that all fail
for the same reason.  *Lifting* drops the state bits that played no part
in the query's outcome before the obligation is posed, so one obligation
(and the blocking clause generalized from it) covers the whole family.

The mechanism is three-valued (0/1/X) simulation over the bit-blaster's
AIG — the very structure the SAT queries are solved against, so no
second encoding of the transition relation exists.  Starting from the
SAT model, each cube state bit is tentatively replaced by X and the cone
of the *required outputs* re-simulated; if every required output still
evaluates to its model value, no choice of that bit can change the
outcome and the literal is dropped:

* for the predecessor of an obligation with cube ``c``, the required
  outputs are the next-state function bits named by ``c``'s literals
  (each pinned to its value in ``c``) plus every time-0 environment
  constraint;
* for a root cube (a bad state found in the top frame), they are ``bad``
  at time 0 plus the constraints.

Keeping the constraints in the required set means every state in the
lifted cube is a *legal* predecessor under the recorded inputs — which
is what lets the engine re-simulate obligation chains into genuine
counterexample traces even though the intermediate models no longer pin
every register.

Lifting never decides soundness by itself: the engine separately checks
that a lifted cube stays disjoint from the initial states and falls back
to the full cube otherwise (a blocking clause learned from an
init-intersecting cube would cut reachable states).
"""

from __future__ import annotations

from repro.ir import expr as E
from repro.mc.pdr.frames import Cube, PdrContext

#: The third simulation value: "either 0 or 1".
X = 2


class CubeLifter:
    """Ternary lifting over one :class:`PdrContext`'s AIG.

    Construction blasts the next-state functions, the constraints, and
    ``bad`` at time 0; structural hashing makes these the same nodes the
    context's asserted transition already created, so the AIG does not
    meaningfully grow and any straggler nodes are Tseitin-encoded by the
    next ``ctx.solve``.
    """

    def __init__(self, ctx: PdrContext, bad: E.Expr):
        self.ctx = ctx
        blaster = ctx.blaster
        unroller = ctx.unroller
        system = ctx.system
        #: (state name, bit) -> AIG literal of its next-state function @0.
        self._ns_lits: dict[tuple[str, int], int] = {}
        for name, next_expr in system.next.items():
            bits = blaster.blast(unroller.at_time(next_expr, 0))
            for i, lit in enumerate(bits):
                self._ns_lits[(name, i)] = lit
        self._constraint_lits = [
            blaster.blast_bool(c) for c in unroller.constraints_at(0)]
        self._bad_lit = blaster.blast_bool(unroller.at_time(bad, 0))
        #: (state name, bit) -> AIG input node holding it at time 0.
        self._bit_node: dict[tuple[str, int], int] = {}
        for name in system.states:
            for i, lit in enumerate(ctx.state_bit_lits(name, 0)):
                self._bit_node[(name, i)] = lit >> 1
        self.lifts = 0
        self.dropped_bits = 0

    # ------------------------------------------------------------------

    def lift_root(self, cube: Cube) -> Cube:
        """Lift a bad-state cube: ``bad@0`` must stay true."""
        return self._lift(cube, [(self._bad_lit, 1)])

    def lift_predecessor(self, cube: Cube, succ: Cube) -> Cube:
        """Lift a predecessor cube: the successor cube must stay forced."""
        required = []
        for name, bit, value in succ:
            lit = self._ns_lits.get((name, bit))
            if lit is None:
                # No next-state function: the time-1 bit floats free and
                # any predecessor can reach the required value.
                continue
            required.append((lit, value))
        return self._lift(cube, required)

    # ------------------------------------------------------------------

    def _lift(self, cube: Cube, required: list[tuple[int, int]]) -> Cube:
        """Drop every cube literal whose X leaves ``required`` determined.

        Must run while the SAT model that produced ``cube`` is still the
        solver's current model (all values are read through it).
        """
        if not cube:
            return cube
        required = required + [(lit, 1) for lit in self._constraint_lits]
        aig = self.ctx.blaster.aig
        cnf = self.ctx.cnf

        # Cone of the required outputs.  AIG node ids are topologically
        # ordered (fanins precede their AND), so a sorted node set is a
        # valid evaluation order.
        seen: set[int] = set()
        stack = [lit >> 1 for lit, _value in required]
        leaves: list[int] = []
        while stack:
            node = stack.pop()
            if node == 0 or node in seen:
                continue
            seen.add(node)
            if aig.is_and(node):
                a, b = aig.fanins(node)
                stack.append(a >> 1)
                stack.append(b >> 1)
            else:
                leaves.append(node)
        flat = []
        for node in sorted(seen):
            if aig.is_and(node):
                a, b = aig.fanins(node)
                flat.append((node, a, b))

        vals = [0] * aig.num_nodes
        for node in leaves:
            vals[node] = 1 if cnf.lit_value(node << 1) else 0

        def determined() -> bool:
            for node, a, b in flat:
                va = vals[a >> 1]
                if va != X and a & 1:
                    va ^= 1
                vb = vals[b >> 1]
                if vb != X and b & 1:
                    vb ^= 1
                if va == 0 or vb == 0:
                    vals[node] = 0
                elif va == 1 and vb == 1:
                    vals[node] = 1
                else:
                    vals[node] = X
            for lit, want in required:
                v = vals[lit >> 1]
                if v == X or (v ^ (lit & 1)) != want:
                    return False
            return True

        if not determined():
            # The model should force its own outputs; if it does not
            # (e.g. a required node outside the encoded region), lifting
            # is not safe — keep the concrete cube.
            return cube

        out = []
        bit_node = self._bit_node
        for entry in cube:
            node = bit_node[(entry[0], entry[1])]
            if node not in seen:
                continue            # outside the cone: provably irrelevant
            saved = vals[node]
            vals[node] = X
            if determined():
                continue            # X survived: drop the literal
            vals[node] = saved
            out.append(entry)
        self.lifts += 1
        self.dropped_bits += len(cube) - len(out)
        if not out:
            # An empty cube would claim *every* state reaches the target
            # — true here, but useless as an obligation (its negation is
            # the empty clause).  Keep the concrete cube instead.
            return cube
        return tuple(out)
