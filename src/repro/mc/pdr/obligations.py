"""Proof obligations and cube generalization for the PDR engine.

A *proof obligation* ``(cube, level)`` asks the engine to show that no
state in ``cube`` is reachable from frame ``F_{level-1}`` in one step.
Obligations form a chain back from the bad state the top-frame query
produced: a satisfiable consecution query spawns a predecessor
obligation one level down, and an obligation reaching level 0 is a
concrete counterexample (its query was solved with the init equations
active, so its stored environment *is* an initial state).

The queue is a priority heap ordered by (level, age): lowest level
first — the shallowest unresolved obligation is always the one that can
refute fastest, and handling it first keeps frames tight before deeper
obligations are attempted.

:func:`generalize_clause` implements the standard drop-literal
("MIC-lite") generalization: starting from the blocking clause
``¬cube``, each literal is tentatively dropped and kept out only if the
shrunk clause still (a) contains all initial states and (b) passes the
relative-induction consecution query.  Both probes run under a conflict
budget via :meth:`~repro.sat.solver.Solver.solve_limited` — an
indeterminate probe conservatively keeps the literal, trading clause
strength for bounded latency.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field

from repro.mc.pdr.frames import (Cube, FrameTrapezoid, PdrContext,
                                 _unbudgeted, negate_cube)

_counter = itertools.count()


@dataclass
class Obligation:
    """One pending proof obligation (see module docstring).

    ``env`` is the full input+state valuation of the time-0 model that
    produced the cube — the trace frame this obligation contributes if
    the chain reaches an initial state.  ``succ`` points toward the bad
    state; walking it from a level-0 obligation yields the
    counterexample trace in execution order.
    """

    cube: Cube
    level: int
    env: dict[str, int]
    succ: "Obligation | None" = None
    seq: int = field(default_factory=lambda: next(_counter))

    def chain_envs(self) -> list[dict[str, int]]:
        """Trace frames from this obligation to the bad state, in order."""
        envs = []
        node: Obligation | None = self
        while node is not None:
            envs.append(dict(node.env))
            node = node.succ
        return envs


class ObligationQueue:
    """Min-heap of obligations, lowest level (then oldest) first."""

    def __init__(self) -> None:
        self._heap: list[tuple[int, int, Obligation]] = []

    def __len__(self) -> int:
        return len(self._heap)

    def push(self, obligation: Obligation) -> None:
        heapq.heappush(self._heap,
                       (obligation.level, obligation.seq, obligation))

    def pop(self) -> Obligation:
        return heapq.heappop(self._heap)[2]

    def clear(self) -> None:
        self._heap.clear()


def generalize_clause(ctx: PdrContext, frames: FrameTrapezoid,
                      cube: Cube, level: int,
                      budget_fn=None) -> tuple:
    """Shrink the blocking clause ``¬cube`` by dropping literals.

    Returns the generalized clause (a tuple of bit literals, in cube
    order).  Every candidate drop must keep the clause a superset of the
    initial states and relatively inductive at ``level``; an exhausted
    per-probe conflict budget keeps the literal.  ``budget_fn`` is
    called before every probe and returns that probe's conflict budget
    — the engine uses it as the run-wide budget checkpoint too, so a
    spent run aborts out of generalization instead of finishing the
    pass.  The loop is a single pass — quadratic re-passes buy little
    on the design sizes this engine serves and cost a solver call per
    literal each time.
    """
    if budget_fn is None:
        budget_fn = _unbudgeted
    clause = list(negate_cube(cube))
    index = 0
    while index < len(clause) and len(clause) > 1:
        trial = clause[:index] + clause[index + 1:]
        if _init_intersects(ctx, frames, trial, budget_fn()) or \
                not _still_inductive(ctx, frames, trial, level,
                                     budget_fn()):
            index += 1          # literal is load-bearing: keep it
        else:
            clause = trial      # dropped; retry the same position
    return tuple(clause)


def _init_intersects(ctx: PdrContext, frames: FrameTrapezoid,
                     clause: list, budget: int | None) -> bool:
    """Does some initial state fall *outside* ``clause``?

    The query assumes the level-0 activation literal (which carries the
    init equations) plus the negated clause as a cube; SAT — or an
    exhausted budget — means the drop is unsafe.
    """
    assumptions = list(frames.activation(0)) + \
        ctx.cube_assumptions(negate_cube(tuple(clause)), 0)
    verdict = ctx.solve(assumptions, conflict_budget=budget)
    return verdict is not False


def _still_inductive(ctx: PdrContext, frames: FrameTrapezoid,
                     clause: list, level: int,
                     budget: int | None) -> bool:
    """Relative induction probe: ``F_{level-1} ∧ c ∧ T → c'`` ?

    The clause is asserted at time 0 under a throwaway guard (retired
    afterwards so its learnt consequences stay but the clause itself is
    permanently satisfied) and refuted at time 1 via cube assumptions.
    """
    guard = ctx.new_guard()
    ctx.guarded_clause(guard, tuple(clause), 0)
    assumptions = list(frames.activation(level - 1)) + [guard] + \
        ctx.cube_assumptions(negate_cube(tuple(clause)), 1)
    verdict = ctx.solve(assumptions, conflict_budget=budget)
    ctx.retire_guard(guard)
    return verdict is False
