"""The IC3/PDR main loop.

Property-directed reachability proves (or refutes) a safety property
without ever unrolling more than one transition step: it grows the
frame trapezoid (:mod:`repro.mc.pdr.frames`) one frame per round,
blocks every bad state the top frame still admits through recursive
proof obligations (:mod:`repro.mc.pdr.obligations`), and terminates when

* an obligation chain reaches the initial states — a **real**
  counterexample, reconstructed frame-by-frame from the obligation
  models into the standard :class:`~repro.trace.trace.Trace`; or
* outward clause propagation makes two adjacent frames coincide — the
  frame above the fixpoint is a **1-step inductive invariant** implying
  the property, returned on the result as ``invariant`` so other
  engines (k-induction via the lemma flow) can re-assume it.

Warm-up semantics (``valid_from`` on properties and lemmas) are handled
by a saturating age counter composed onto the system: ``bad`` is gated
on ``age >= valid_from`` and each lemma on its own threshold, so the
frames themselves never need time-indexed reasoning.  Invariant
certificates are only emitted for warm-up-free runs — an age-gated
certificate would range over the internal counter and be useless to
other engines.

External candidate lemmas (:mod:`repro.mc.pdr.seed`) enter as frame-1
members after the admission checks; everything downstream treats them
exactly like discovered clauses, including outward propagation into the
final invariant.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.ir import expr as E
from repro.ir.system import TransitionSystem
from repro.mc.frame import StatsTimer
from repro.mc.pdr.frames import (Cube, FrameMember, FrameTrapezoid,
                                 PdrContext, negate_cube)
from repro.mc.pdr.lift import CubeLifter
from repro.mc.pdr.obligations import (Obligation, ObligationQueue,
                                      generalize_clause)
from repro.mc.property import SafetyProperty
from repro.mc.result import CheckResult, ProofStats, Status
from repro.sim.simulator import Simulator
from repro.trace.trace import Trace, TraceKind

#: Name of the internal warm-up counter state (see module docstring).
AGE_STATE = "_pdr.age"


@dataclass
class PdrOptions:
    """Tuning for one PDR run.

    ``conflict_budget`` caps the **whole run's** SAT conflicts: every
    query is solved against the remaining allowance, and exhaustion
    turns into a clean UNKNOWN — the property a portfolio engine needs
    to lose races gracefully instead of grinding.  ``gen_budget``
    additionally bounds each individual generalization/seed-admission
    probe (an indeterminate probe just keeps the literal / drops the
    seed).  ``max_obligations`` is the queue-side runaway guard.
    ``lift_cubes`` enables ternary-simulation lifting of predecessor
    cubes (:mod:`repro.mc.pdr.lift`) — on by default, the switch exists
    for A/B parity checks.  The ``seed_*`` options feed
    :mod:`repro.mc.pdr.seed`: explicit SVA bodies, static-synthesis
    candidates mined from the design, and invariants mined from a
    campaign proof store.
    """

    max_frames: int = 25
    conflict_budget: int | None = 50_000
    propagation_budget: int | None = 5_000_000
    gen_budget: int | None = 2000
    max_obligations: int = 20_000
    lift_cubes: bool = True
    seeds: tuple[str, ...] = ()
    seed_static: bool = False
    seed_store_dir: str | None = None
    seed_limit: int = 16


class _Budget(Exception):
    """Internal: an engine budget ran out (result: UNKNOWN)."""

    def __init__(self, reason: str):
        super().__init__(reason)
        self.reason = reason


def pdr(system: TransitionSystem, prop: SafetyProperty,
        options: PdrOptions | None = None,
        lemmas: list[tuple[E.Expr, int]] | None = None) -> CheckResult:
    """Run IC3/PDR on one property; see the module docstring."""
    opts = options or PdrOptions()
    run = _PdrRun(system, prop, opts, lemmas or [])
    return run.execute()


class _PdrRun:
    """State of one PDR execution (context, frames, queue, stats)."""

    def __init__(self, system: TransitionSystem, prop: SafetyProperty,
                 opts: PdrOptions, lemmas: list[tuple[E.Expr, int]]):
        self.original = system
        self.prop = prop
        self.opts = opts
        self.stats = ProofStats()
        resolved = prop.resolved_against(system)
        lemma_pairs = [(system.resolve_defines(g), vf) for g, vf in lemmas]
        self.max_vf = max([resolved.valid_from] +
                          [vf for _g, vf in lemma_pairs], default=0)
        if self.max_vf > 0:
            self.system, self.bad, gated = _with_age(
                system, resolved, lemma_pairs, self.max_vf)
        else:
            self.system = system
            self.bad = resolved.bad
            gated = [g for g, _vf in lemma_pairs]
        self.ctx = PdrContext(self.system)
        self.frames = FrameTrapezoid(self.ctx, lemmas=gated)
        self.queue = ObligationQueue()
        self.obligations = 0
        self.lifter = CubeLifter(self.ctx, self.bad) \
            if opts.lift_cubes else None
        self._init_bits = _constant_init_bits(self.system)

    # ------------------------------------------------------------------

    def execute(self) -> CheckResult:
        with StatsTimer(self.stats):
            try:
                result = self._main_loop()
            except _Budget as exc:
                result = self._result(
                    Status.UNKNOWN, k=self.frames.top,
                    detail=f"{exc.reason} at frame {self.frames.top}")
        self.stats.merge_from(self.ctx.stats_snapshot())
        result.stats = self.stats
        return result

    # ------------------------------------------------------------------
    # Budgets: every query spends from one run-wide conflict allowance
    # ------------------------------------------------------------------

    def _checkpoint(self) -> None:
        """Raise when a run-wide budget is spent.

        Called between queries (obligation pops, generalization probes,
        propagation probes): a single query cannot be interrupted, but
        the run as a whole stays bounded in both conflicts and
        propagations — the latter catches propagation-dominated grinds
        (wide datapaths) that barely conflict at all.
        """
        s = self.ctx.solver.stats
        if self.opts.conflict_budget is not None and \
                s.conflicts >= self.opts.conflict_budget:
            raise _Budget(f"conflict budget "
                          f"({self.opts.conflict_budget}) exhausted")
        if self.opts.propagation_budget is not None and \
                s.propagations >= self.opts.propagation_budget:
            raise _Budget(f"propagation budget "
                          f"({self.opts.propagation_budget}) exhausted")

    def _remaining(self) -> int | None:
        if self.opts.conflict_budget is None:
            return None
        used = self.ctx.solver.stats.conflicts
        return max(1, self.opts.conflict_budget - used)

    def _probe_budget(self) -> int | None:
        """Budget for one best-effort probe (generalization, seeding).

        Doubles as the between-probe budget checkpoint: generalization
        calls this before every probe.
        """
        self._checkpoint()
        remaining = self._remaining()
        if self.opts.gen_budget is None:
            return remaining
        if remaining is None:
            return self.opts.gen_budget
        return min(self.opts.gen_budget, remaining)

    def _solve_or_raise(self, assumptions: list[int]) -> bool:
        """A query whose answer the algorithm *needs*: indeterminate
        means the run's conflict budget is gone — give up cleanly."""
        verdict = self.ctx.solve(assumptions,
                                 conflict_budget=self._remaining())
        if verdict is None:
            raise _Budget(f"conflict budget "
                          f"({self.opts.conflict_budget}) exhausted")
        return verdict

    def _consecution_sat(self, assumptions: list[int],
                         guard: int) -> bool:
        """Budgeted obligation consecution; retires ``guard`` if the
        budget dies mid-query so the temporary clause never lingers."""
        verdict = self.ctx.solve(assumptions,
                                 conflict_budget=self._remaining())
        if verdict is None:
            self.ctx.retire_guard(guard)
            raise _Budget(f"conflict budget "
                          f"({self.opts.conflict_budget}) exhausted")
        return verdict

    def _result(self, status: Status, k: int, detail: str,
                cex: Trace | None = None,
                invariant: list[E.Expr] | None = None) -> CheckResult:
        return CheckResult(self.prop.name, status, k=k, cex=cex,
                           detail=detail, invariant=invariant)

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------

    def _main_loop(self) -> CheckResult:
        ctx, frames = self.ctx, self.frames
        bad_lit = ctx.expr_assumption(self.bad, 0)

        # 0-step check: a bad initial state needs no frames at all.
        if self._solve_or_raise(list(frames.activation(0)) + [bad_lit]):
            trace = self._trace([ctx.frame_env(0)])
            return self._result(Status.VIOLATED, k=0, cex=trace,
                                detail="bad state at cycle 0")

        self._admit_seeds()

        while frames.top <= self.opts.max_frames:
            k = frames.top
            self.stats.max_depth = k
            # Clear every bad state the top frame still admits.
            while self._solve_or_raise(list(frames.activation(k)) +
                                       [bad_lit]):
                env = ctx.frame_env(0)
                cube = self._predecessor_cube(None)
                cex = self._block(Obligation(cube, k, env))
                if cex is not None:
                    return self._result(
                        Status.VIOLATED, k=cex.length - 1, cex=cex,
                        detail=f"counterexample at depth "
                               f"{cex.length - 1}")
            frames.add_frame()
            fixpoint = frames.propagate(budget_fn=self._probe_budget)
            if fixpoint is not None:
                members = frames.invariant_members(fixpoint)
                seeded = sum(1 for m in members if m.seeded)
                invariant = None
                if self.max_vf == 0:
                    invariant = frames.member_exprs(members)
                    invariant.append(
                        self.system.resolve_defines(self.prop.good))
                return self._result(
                    Status.PROVEN, k=k,
                    detail=f"inductive invariant at frame {fixpoint + 1} "
                           f"({len(members)} members, {seeded} seeded, "
                           f"{self.frames.top} frames)",
                    invariant=invariant)
        return self._result(
            Status.UNKNOWN, k=self.opts.max_frames,
            detail=f"no fixpoint within {self.opts.max_frames} frames")

    # ------------------------------------------------------------------
    # Obligation blocking
    # ------------------------------------------------------------------

    def _block(self, root: Obligation) -> Trace | None:
        """Discharge ``root`` and everything it spawns.

        Returns a counterexample trace if an obligation chain reaches
        the initial states, else None once every obligation is blocked.
        """
        ctx, frames = self.ctx, self.frames
        self.queue.push(root)
        while len(self.queue):
            self.obligations += 1
            if self.obligations > self.opts.max_obligations:
                raise _Budget(f"obligation budget "
                              f"({self.opts.max_obligations}) exhausted")
            self._checkpoint()
            ob = self.queue.pop()
            if ob.level == 0:
                # The query that produced this obligation had the init
                # equations active: its stored env is an initial state.
                return self._trace(ob.chain_envs())
            if frames.blocks_syntactically(ob.cube, ob.level):
                # Already excluded at this level — keep pushing the
                # obligation outward like the UNSAT-consecution path
                # does; those pushes carry clauses toward the fixpoint.
                if ob.level < frames.top:
                    self.queue.push(replace(ob, level=ob.level + 1))
                continue
            guard = ctx.new_guard()
            ctx.guarded_clause(guard, negate_cube(ob.cube), 0)
            assumptions = list(frames.activation(ob.level - 1)) + \
                [guard] + ctx.cube_assumptions(ob.cube, 1)
            if self._consecution_sat(assumptions, guard):
                env = ctx.frame_env(0)
                cube = self._predecessor_cube(ob)
                ctx.retire_guard(guard)
                self.queue.push(Obligation(cube, ob.level - 1, env,
                                           succ=ob))
                self.queue.push(ob)
            else:
                ctx.retire_guard(guard)
                clause = generalize_clause(ctx, frames, ob.cube,
                                           ob.level,
                                           budget_fn=self._probe_budget)
                frames.add_member(FrameMember(clause=clause), ob.level)
                if ob.level < frames.top:
                    # Re-examine one frame out: obligations that stay
                    # blockable push the proof toward the fixpoint.
                    self.queue.push(replace(ob, level=ob.level + 1))
        return None

    # ------------------------------------------------------------------
    # Predecessor extraction (cube lifting)
    # ------------------------------------------------------------------

    def _predecessor_cube(self, succ: Obligation | None) -> Cube:
        """The current model's time-0 state cube, lifted when safe.

        Must run while the SAT model is still live.  All model reads
        (the concrete cube and the ternary simulation) happen before the
        init-disjointness probe, which is the only solver call here and
        clobbers the model.  ``succ`` is the obligation this state is a
        predecessor of; None means a root (bad-state) cube.
        """
        cube = self.ctx.state_cube(0)
        if self.lifter is None:
            return cube
        if succ is None:
            lifted = self.lifter.lift_root(cube)
        else:
            lifted = self.lifter.lift_predecessor(cube, succ.cube)
        if len(lifted) == len(cube):
            return cube
        if self._avoids_init(lifted):
            return lifted
        return cube

    def _avoids_init(self, cube: Cube) -> bool:
        """Is ``cube`` disjoint from the initial states?

        Obligations wider than the concrete model state may only be
        posed when they exclude every initial state — a blocking clause
        learned from an init-intersecting cube would cut reachable
        states.  For constant-init registers the check is syntactic and
        exact: one literal contradicting an init bit proves
        disjointness, and a cube agreeing with every (fully known) init
        bit contains the initial state.  Anything indeterminate falls
        through to a budgeted SAT probe, where an exhausted budget
        counts as unsafe.
        """
        indeterminate = False
        for name, bit, value in cube:
            want = self._init_bits.get((name, bit))
            if want is None:
                indeterminate = True
            elif want != value:
                return True
        if not indeterminate:
            # Every literal agrees with a constant init bit, so every
            # initial state satisfies the whole cube.
            return False
        verdict = self.ctx.solve(
            list(self.frames.activation(0)) +
            self.ctx.cube_assumptions(cube, 0),
            conflict_budget=self._probe_budget())
        return verdict is False

    # ------------------------------------------------------------------
    # Seeding
    # ------------------------------------------------------------------

    def _admit_seeds(self) -> None:
        """Install externally suggested predicates into frame 1.

        Admission requires ``init → p`` and ``init ∧ T → p'`` (both as
        budgeted probes), which is exactly what membership of ``F_1``
        — an over-approximation of the states reachable in at most one
        step — demands.  Rejected candidates are simply dropped: seeds
        are scheduling hints, never soundness inputs.
        """
        from repro.mc.pdr.seed import gather_seed_predicates

        candidates = gather_seed_predicates(
            self.original, seeds=self.opts.seeds,
            static=self.opts.seed_static,
            store_dir=self.opts.seed_store_dir,
            limit=self.opts.seed_limit)
        ctx, frames = self.ctx, self.frames
        for pred in candidates:
            base = list(frames.activation(0))
            holds_at_init = ctx.solve(
                base + [ctx.expr_assumption(E.not_(pred), 0)],
                conflict_budget=self._probe_budget())
            if holds_at_init is not False:
                continue
            holds_after_step = ctx.solve(
                base + [ctx.expr_assumption(E.not_(pred), 1)],
                conflict_budget=self._probe_budget())
            if holds_after_step is not False:
                continue
            frames.add_member(FrameMember(pred=pred, seeded=True), 1)

    # ------------------------------------------------------------------
    # Trace reconstruction
    # ------------------------------------------------------------------

    def _trace(self, envs: list[dict[str, int]]) -> Trace:
        """Re-simulate obligation environments into a consistent trace.

        With cube lifting, an obligation's recorded state values need
        not agree bit-for-bit with what its predecessor's state actually
        steps to — only the bits in the (lifted) cube are pinned.  The
        init-rooted first frame plus the recorded *inputs* determine a
        genuine execution (lifting keeps the constraints and the
        chaining next-state bits fixed), so the trace is rebuilt by
        forward simulation and then projected onto the original design.
        """
        sim = Simulator(self.system, check_constraints=False)
        sim.load_state({name: envs[0].get(name, 0)
                        for name in self.system.states})
        names = list(self.original.inputs) + list(self.original.states)
        frames = []
        for env in envs:
            inputs = {name: env.get(name, 0)
                      for name in self.system.inputs}
            snap = sim.step(inputs)
            frames.append({name: snap[name] for name in names})
        return Trace.from_model_values(
            self.original, frames, TraceKind.BMC_CEX,
            property_name=self.prop.name,
            note=f"pdr counterexample, bad at cycle {len(frames) - 1}")


def _constant_init_bits(system: TransitionSystem) -> dict[tuple[str, int],
                                                          int]:
    """Bit values of registers whose init is a compile-time constant.

    Mirrors the simulator's reset rule (init expressions may reference
    previously initialized registers); registers with no init or a
    non-constant one are left out, deferring to the SAT probe in
    :meth:`_PdrRun._avoids_init`.
    """
    env: dict[str, int] = {}
    bits: dict[tuple[str, int], int] = {}
    for name, v in system.states.items():
        init_expr = system.init.get(name)
        if init_expr is None:
            continue
        resolved = system.resolve_defines(init_expr)
        if E.support(resolved) - set(env):
            continue
        value = E.evaluate(resolved, env)
        env[name] = value
        for i in range(v.width):
            bits[(name, i)] = (value >> i) & 1
    return bits


# ---------------------------------------------------------------------------
# Warm-up (valid_from) composition
# ---------------------------------------------------------------------------


def _with_age(system: TransitionSystem, resolved: SafetyProperty,
              lemma_pairs: list[tuple[E.Expr, int]],
              max_vf: int) -> tuple[TransitionSystem, E.Expr,
                                    list[E.Expr]]:
    """Compose a saturating age counter onto the system.

    Returns the augmented system, the age-gated bad expression, and the
    age-gated lemma expressions: ``bad`` only counts once the counter
    reached the property's warm-up, and each lemma is assumed only once
    its own warm-up passed.
    """
    width = max(1, max_vf.bit_length())
    aug = system.clone(f"{system.name}+pdr_age")
    top = E.const(max_vf, width)
    age = aug.add_state(AGE_STATE, width, init=E.const(0, width))
    aug.set_next(AGE_STATE,
                 E.ite(E.ult(age, top),
                       E.add(age, E.const(1, width)), age))
    bad = E.and_(resolved.bad,
                 E.uge(age, E.const(resolved.valid_from, width)))
    gated = []
    for good, vf in lemma_pairs:
        if vf <= 0:
            gated.append(good)
        else:
            gated.append(E.or_(E.ult(age, E.const(vf, width)), good))
    return aug, bad, gated
