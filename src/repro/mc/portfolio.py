"""Parallel portfolio scheduling of check tasks.

The :class:`PortfolioScheduler` takes a batch of verification tasks
(one per property), expands each into a *race* of complementary
strategies (a prover like k-induction plus a refuter like BMC), fans the
whole batch across a ``ProcessPoolExecutor``, and streams per-property
outcomes back **in completion order**:

* the first *conclusive* result (PROVEN / VIOLATED) for a property wins
  its race, and the losing siblings are cancelled (queued siblings are
  dropped; already-running ones finish and are discarded — workers are
  not killed mid-solve);
* if every strategy comes back inconclusive, the most informative
  inconclusive result is reported (earliest strategy in the configured
  order, so a k-induction UNKNOWN with its step CEX beats a BMC
  BOUNDED_OK);
* results are looked up in / stored to a shared
  :class:`~repro.mc.cache.ResultCache` first, so repeated batches cost
  nothing.

``jobs=1`` (the default) runs the same race logic inline with no process
pool and no pickling — strategies execute in configured order and stop at
the first conclusive verdict.  This path is deterministic and is what the
flows use under test.
"""

from __future__ import annotations

import os
from concurrent.futures import (CancelledError, Future,
                                ProcessPoolExecutor, as_completed)
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping, Sequence

from repro.ir import expr as E
from repro.ir.system import TransitionSystem
from repro.mc.cache import (ResultCache, query_key, run_cached,
                            strategy_cacheable)
from repro.mc.property import SafetyProperty
from repro.mc.result import CheckResult, Status
from repro.mc.strategy import (CheckTask, canonical_options,
                               resolve_strategy, run_check_task,
                               strategy_option_names)
from repro.obs import tracing as _tracing

#: Complementary default race: k-induction proves, BMC refutes.
DEFAULT_PORTFOLIO: tuple[str, ...] = ("k_induction", "bmc")


def depth_options(strategies: Sequence[str],
                  max_k: int | None = None,
                  bound: int | None = None,
                  simple_path: bool | None = None
                  ) -> dict[str, dict]:
    """Per-spec option overrides applying caller depth limits.

    Maps induction depth (``max_k``/``simple_path``) onto every
    k-induction-family spec and the BMC ``bound`` onto every BMC-family
    spec, *without* clobbering options the spec already sets inline
    (``"bmc(bound=6)"`` keeps its 6).  Options a strategy's ``run``
    signature does not accept are never applied — PDR measures depth in
    frames, not unrolling steps, so ``max_k`` deliberately passes it
    by (bound it with ``max_frames`` in the spec).  The single place
    the engine defaults and ``verify_all`` both derive portfolio
    options from, so extending :data:`DEFAULT_PORTFOLIO` cannot
    silently desynchronize the call sites.
    """
    overrides: dict[str, dict] = {}
    for spec in strategies:
        strategy, inline = resolve_strategy(spec)
        accepted = strategy_option_names(strategy)
        options: dict = {}
        if strategy.can_prove:  # k-induction family
            if max_k is not None and "max_k" not in inline:
                options["max_k"] = max_k
            if simple_path is not None and "simple_path" not in inline:
                options["simple_path"] = simple_path
        else:                   # bmc family
            if bound is not None and "bound" not in inline:
                options["bound"] = bound
        options = {k: v for k, v in options.items() if k in accepted}
        if options:
            overrides[spec] = options
    return overrides


@dataclass
class VerifyTask:
    """One property to verify against one (scoped) transition system.

    ``tag`` is opaque caller identity (the campaign scheduler stamps the
    design name on it) carried through to the outcome, so one flattened
    cross-design batch can be demultiplexed afterwards.  ``strategies``,
    when set, overrides the scheduler's portfolio for this task only —
    the hook adaptive selection uses to order or prune each job's race.
    """

    system: TransitionSystem
    prop: SafetyProperty
    lemmas: list[tuple[E.Expr, int]] = field(default_factory=list)
    tag: str = ""
    strategies: tuple[str, ...] | None = None


@dataclass
class PortfolioOutcome:
    """Per-property outcome of a portfolio race."""

    property_name: str
    result: CheckResult
    strategy: str               # spec string that produced `result`
    attempts: int = 0           # strategy results actually observed
    cancelled: int = 0          # siblings dropped after the win
    from_cache: bool = False
    tag: str = ""               # the task's tag, passed through
    #: One plain dict per raced slot, in configured order — the effort
    #: ledger's raw material (see :func:`attempt_record`).  Plain dicts
    #: so the log pickles through the dist protocol and JSON-serializes
    #: into the proof store unchanged.
    attempt_log: list[dict] = field(default_factory=list)

    @property
    def status(self) -> Status:
        return self.result.status

    def one_line(self) -> str:
        origin = "cache" if self.from_cache else self.strategy
        extra = f" [{origin}" + \
            (f", {self.cancelled} cancelled]" if self.cancelled else "]")
        return self.result.one_line() + extra


def attempt_record(spec: str, result: CheckResult, origin: str,
                   winner: bool = False) -> dict:
    """One effort-ledger row for a strategy attempt that produced a
    result.  ``origin`` is where the answer came from: ``"solver"``,
    or the cache tier that served it (``"memory"`` / ``"disk"``)."""
    effort = result.stats.effort_dict()
    effort["solve_seconds"] = round(result.stats.solve_seconds, 6)
    return {"strategy": spec, "status": result.status.value,
            "origin": origin, "winner": winner, "k": result.k,
            "wall_seconds": round(result.stats.wall_seconds, 6),
            "effort": effort}


def unrun_record(spec: str, origin: str) -> dict:
    """A ledger row for a slot that produced no result: ``"skipped"``
    (never started — an earlier slot already won) or ``"cancelled"``
    (submitted to the pool, then dropped/discarded after the win)."""
    return {"strategy": spec, "status": "", "origin": origin,
            "winner": False, "k": 0, "wall_seconds": 0.0, "effort": {}}


def _worker_run(task: CheckTask) -> CheckResult:
    """Module-level so the process pool can pickle it by reference."""
    return run_check_task(task)


class PortfolioScheduler:
    """Races strategy portfolios over a batch of properties.

    ``strategies`` are spec strings (see
    :func:`~repro.mc.strategy.resolve_strategy`); ``strategy_options``
    optionally overrides options per spec (e.g. ``{"bmc":
    {"bound": 12}}``).  ``jobs > 1`` enables the process pool.
    """

    def __init__(self, jobs: int = 1,
                 strategies: Sequence[str] = DEFAULT_PORTFOLIO,
                 strategy_options: Mapping[str, Mapping] | None = None,
                 cache: ResultCache | None = None):
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        if not strategies:
            raise ValueError("at least one strategy is required")
        for spec in strategies:
            resolve_strategy(spec)  # fail fast on bad specs
        self.jobs = jobs
        self.strategies = tuple(strategies)
        self.strategy_options = {k: dict(v) for k, v in
                                 (strategy_options or {}).items()}
        self.cache = cache

    # ------------------------------------------------------------------

    def run(self, tasks: Sequence[VerifyTask]) -> list[PortfolioOutcome]:
        """All outcomes, in completion order (see :meth:`stream`)."""
        return list(self.stream(tasks))

    def run_batch(self, system: TransitionSystem,
                  properties: Iterable[SafetyProperty],
                  lemmas: list[tuple[E.Expr, int]] | None = None
                  ) -> list[PortfolioOutcome]:
        """Convenience wrapper: same system and lemma set for every task."""
        shared = list(lemmas or [])
        return self.run([VerifyTask(system, p, list(shared))
                         for p in properties])

    def stream(self, tasks: Sequence[VerifyTask]
               ) -> Iterator[PortfolioOutcome]:
        """Yield one outcome per task as each race concludes."""
        if not tasks:
            return
        total_slots = 0
        for task in tasks:
            for spec in task.strategies or ():
                resolve_strategy(spec)  # fail fast on bad overrides
            total_slots += len(self._specs_for(task))
        if self.jobs == 1 or total_slots == 1:
            yield from self._stream_sequential(tasks)
        else:
            yield from self._stream_parallel(tasks)

    # ------------------------------------------------------------------
    # Sequential path (jobs=1): race by ordering, stop at first verdict.
    # ------------------------------------------------------------------

    def _options_for(self, spec: str) -> dict:
        return dict(self.strategy_options.get(spec, {}))

    def _specs_for(self, task: VerifyTask) -> tuple[str, ...]:
        return task.strategies if task.strategies else self.strategies

    def _key_for(self, spec: str, options: Mapping,
                 task: VerifyTask) -> str | None:
        """Cache key for one slot, or None when the invocation is not
        cacheable (see :func:`~repro.mc.cache.strategy_cacheable`)."""
        strategy, resolved = resolve_strategy(spec)
        resolved.update(options)
        if not strategy_cacheable(strategy, resolved):
            return None
        return query_key(task.system, task.prop, strategy.name,
                         canonical_options(strategy, resolved),
                         task.lemmas)

    def _stream_sequential(self, tasks: Sequence[VerifyTask]
                           ) -> Iterator[PortfolioOutcome]:
        for task in tasks:
            specs = self._specs_for(task)
            best: tuple[str, CheckResult, bool] | None = None
            attempts = 0
            outcome = None
            log: list[dict] = []
            for spec in specs:
                hits_before = self.cache.stats.hits \
                    if self.cache is not None else 0
                disk_before = self.cache.stats.disk_hits \
                    if self.cache is not None else 0
                result = run_cached(spec, task.system, task.prop,
                                    self._options_for(spec),
                                    lemmas=task.lemmas, cache=self.cache)
                was_hit = self.cache is not None and \
                    self.cache.stats.hits > hits_before
                origin = "solver" if not was_hit else \
                    ("disk" if self.cache.stats.disk_hits > disk_before
                     else "memory")
                log.append(attempt_record(spec, result, origin))
                attempts += 1
                if result.status.conclusive:
                    log[-1]["winner"] = True
                    log += [unrun_record(s, "skipped")
                            for s in specs[attempts:]]
                    outcome = PortfolioOutcome(
                        task.prop.name, result, spec, attempts=attempts,
                        cancelled=len(specs) - attempts,
                        from_cache=was_hit, tag=task.tag,
                        attempt_log=log)
                    break
                if best is None:
                    best = (spec, result, was_hit)
            if outcome is None:
                spec, result, was_hit = best if best is not None else \
                    (specs[0], _no_result(task.prop.name), False)
                for row in log:
                    if row["strategy"] == spec:
                        row["winner"] = True
                        break
                outcome = PortfolioOutcome(task.prop.name, result, spec,
                                           attempts=attempts,
                                           from_cache=was_hit,
                                           tag=task.tag,
                                           attempt_log=log)
            yield outcome

    # ------------------------------------------------------------------
    # Parallel path: full fan-out, first conclusive result per group wins.
    # ------------------------------------------------------------------

    def _stream_parallel(self, tasks: Sequence[VerifyTask]
                         ) -> Iterator[PortfolioOutcome]:
        groups = [_RaceGroup(i, task, self._specs_for(task))
                  for i, task in enumerate(tasks)]

        # Cache pass first: a conclusive (or any) cached result for a
        # strategy removes it from the fan-out; a fully-resolved group
        # never reaches the pool at all.
        to_submit: list[CheckTask] = []
        for group in groups:
            for slot, spec in enumerate(group.strategies):
                if group.decided:
                    break
                options = self._options_for(spec)
                if self.cache is not None:
                    key = self._key_for(spec, options, group.task)
                    disk_before = self.cache.stats.disk_hits
                    hit = self.cache.get(key) if key is not None \
                        else None
                    if hit is not None:
                        tier = "disk" \
                            if self.cache.stats.disk_hits > disk_before \
                            else "memory"
                        group.record(slot, hit, from_cache=True,
                                     origin=tier)
                        continue
                group.note_submitted(slot)
                to_submit.append(CheckTask(
                    key=(group.index, slot), system=group.task.system,
                    prop=group.task.prop, strategy=spec, options=options,
                    lemmas=group.task.lemmas,
                    trace=_tracing.current_context()))

        for group in groups:
            if group.decided or group.exhausted:
                yield group.outcome()

        pending = [g for g in groups if not (g.decided or g.exhausted)]
        if not pending:
            return

        workers = min(self.jobs, len(to_submit), (os.cpu_count() or 1) * 4)
        try:
            executor = ProcessPoolExecutor(max_workers=max(workers, 1))
        except (OSError, ValueError):
            # No usable multiprocessing in this environment (restricted
            # sandboxes): degrade to the sequential race.
            yield from self._stream_sequential([g.task for g in pending])
            return

        with executor:
            future_by_key: dict[tuple, Future] = {}
            futures: dict[Future, tuple] = {}
            for check in to_submit:
                group = groups[check.key[0]]
                if group.decided:
                    continue
                f = executor.submit(_worker_run, check)
                future_by_key[check.key] = f
                futures[f] = check.key

            for f in as_completed(futures):
                g_index, slot = futures[f]
                group = groups[g_index]
                try:
                    result = f.result()
                except CancelledError:
                    # Already tallied at the sibling.cancel() site.
                    continue
                except Exception as exc:  # worker crash: report, don't die
                    result = _error_result(group.task.prop.name,
                                           group.strategies[slot], exc)
                else:
                    if self.cache is not None:
                        spec = group.strategies[slot]
                        key = self._key_for(
                            spec, self._options_for(spec), group.task)
                        if key is not None:
                            self.cache.put(key, result)
                already_decided = group.decided
                group.record(slot, result)
                if group.decided and not already_decided:
                    # First conclusive result: drop queued siblings.
                    for other_slot in range(len(group.strategies)):
                        key = (g_index, other_slot)
                        sibling = future_by_key.get(key)
                        if sibling is not None and sibling is not f:
                            if sibling.cancel():
                                group.note_cancelled()
                    yield group.outcome()
                elif group.exhausted and not group.decided:
                    yield group.outcome()


# ---------------------------------------------------------------------------


class _RaceGroup:
    """Book-keeping for one property's strategy race."""

    def __init__(self, index: int, task: VerifyTask,
                 strategies: Sequence[str]):
        self.index = index
        self.task = task
        self.strategies = strategies
        self.results: dict[int, tuple[CheckResult, bool]] = {}
        self.origins: dict[int, str] = {}
        self.submitted: set[int] = set()
        self.cancelled = 0
        self.winner_slot: int | None = None

    @property
    def decided(self) -> bool:
        return self.winner_slot is not None

    @property
    def exhausted(self) -> bool:
        return len(self.results) + self.cancelled >= len(self.strategies)

    def record(self, slot: int, result: CheckResult,
               from_cache: bool = False, origin: str = "solver") -> None:
        self.results[slot] = (result, from_cache)
        self.origins[slot] = origin
        if result.status.conclusive and self.winner_slot is None:
            self.winner_slot = slot

    def note_submitted(self, slot: int) -> None:
        self.submitted.add(slot)

    def note_cancelled(self) -> None:
        self.cancelled += 1

    def attempt_log(self, winner_slot: int | None) -> list[dict]:
        """The effort-ledger rows for this race, in configured order.

        Slots without a result at decision time are ``"cancelled"``
        when they reached the pool (queued-dropped or still running,
        soon discarded) and ``"skipped"`` when the race was decided
        before they were ever submitted.
        """
        log = []
        for slot, spec in enumerate(self.strategies):
            if slot in self.results:
                result, _ = self.results[slot]
                log.append(attempt_record(
                    spec, result, self.origins.get(slot, "solver"),
                    winner=slot == winner_slot))
            elif slot in self.submitted:
                log.append(unrun_record(spec, "cancelled"))
            else:
                log.append(unrun_record(spec, "skipped"))
        return log

    def outcome(self) -> PortfolioOutcome:
        if self.winner_slot is not None:
            slot = self.winner_slot
        elif self.results:
            # Most informative inconclusive result: configured order.
            slot = min(self.results)
        else:
            result = _no_result(self.task.prop.name)
            return PortfolioOutcome(self.task.prop.name, result,
                                    self.strategies[0],
                                    cancelled=self.cancelled,
                                    tag=self.task.tag,
                                    attempt_log=self.attempt_log(None))
        result, from_cache = self.results[slot]
        return PortfolioOutcome(
            self.task.prop.name, result, self.strategies[slot],
            attempts=len(self.results), cancelled=self.cancelled,
            from_cache=from_cache, tag=self.task.tag,
            attempt_log=self.attempt_log(slot))


def _no_result(property_name: str) -> CheckResult:
    return CheckResult(property_name, Status.UNKNOWN,
                       detail="portfolio produced no result")


def _error_result(property_name: str, spec: str,
                  exc: Exception) -> CheckResult:
    return CheckResult(property_name, Status.UNKNOWN,
                       detail=f"strategy {spec} failed in worker: "
                              f"{type(exc).__name__}: {exc}")
