"""Standalone certificate checking for PROVEN verdicts.

An engine that answers PROVEN with an ``invariant`` payload (IC3/PDR)
is claiming: the conjunction of those width-1 expressions is an
inductive invariant of the system that implies the property.  This
module re-checks that claim from first principles, deliberately
reusing **no engine code** — no :class:`~repro.mc.frame.FrameSolver`,
no :class:`~repro.mc.unroll.Unroller` — so a bug shared by the engines
cannot vouch for itself.  The differential-fuzzing oracle
(:mod:`repro.qa.oracle`) calls this on every PROVEN-with-certificate
verdict it sees.

Three obligations, over full cycle valuations (states *and* inputs,
with the system constraints assumed exactly as the model-checking
semantics assumes them every cycle):

1. **Initiation** — every constrained initial valuation satisfies the
   invariant;
2. **Consecution** — from any constrained valuation satisfying the
   invariant, every constrained successor valuation satisfies it;
3. **Safety** — no constrained valuation satisfying the invariant
   makes the property's ``bad`` expression true.

Small state spaces are checked by **direct evaluation** (exhaustive
enumeration through :func:`repro.ir.expr.evaluate`, the IR's reference
semantics); larger ones fall back to a **SAT probe** built directly on
the raw :class:`~repro.sat.solver.Solver` /
:class:`~repro.aig.bitblast.BitBlaster` /
:class:`~repro.aig.cnf.CnfBuilder` primitives.  Successor valuations
are formed purely syntactically — states are substituted by their
next-state expressions and inputs by fresh primed variables — so no
unrolling machinery is involved.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.aig.bitblast import BitBlaster
from repro.aig.cnf import CnfBuilder
from repro.ir import expr as E
from repro.ir.system import TransitionSystem
from repro.mc.property import SafetyProperty
from repro.sat.solver import Solver

#: Enumerate exhaustively when current bits + primed input bits fit here.
DEFAULT_EXHAUSTIVE_BITS = 12


@dataclass
class ObligationFailure:
    """One violated proof obligation, with a concrete witness."""

    obligation: str          # "initiation" | "consecution" | "safety"
    witness: dict[str, int]  # valuation (current-cycle signals) breaking it

    def one_line(self) -> str:
        shown = ", ".join(f"{k}={v}" for k, v in
                          sorted(self.witness.items())[:8])
        return f"{self.obligation} fails at {{{shown}}}"


@dataclass
class CertificateReport:
    """Outcome of re-checking one invariant certificate."""

    property_name: str
    method: str                       # "exhaustive" | "sat"
    failures: list[ObligationFailure] = field(default_factory=list)
    conjuncts: int = 0

    @property
    def ok(self) -> bool:
        return not self.failures

    def one_line(self) -> str:
        verdict = "certificate ok" if self.ok else \
            "CERTIFICATE INVALID: " + \
            "; ".join(f.one_line() for f in self.failures)
        return (f"{self.property_name}: {verdict} "
                f"({self.conjuncts} conjuncts, {self.method})")


def check_certificate(system: TransitionSystem, prop: SafetyProperty,
                      invariant: list[E.Expr],
                      exhaustive_bits: int = DEFAULT_EXHAUSTIVE_BITS
                      ) -> CertificateReport:
    """Re-check an engine's inductive-invariant certificate.

    ``invariant`` is the ``CheckResult.invariant`` payload: width-1
    expressions (over the same system the check ran on) whose
    conjunction must be inductive and imply ``prop``.  Collects every
    violated obligation rather than stopping at the first, so a report
    names the full extent of a bad certificate.
    """
    checker = _Checker(system, prop, invariant)
    if checker.total_bits <= exhaustive_bits:
        return checker.run_exhaustive()
    return checker.run_sat()


class _Checker:
    def __init__(self, system: TransitionSystem, prop: SafetyProperty,
                 invariant: list[E.Expr]):
        system.validate()
        if not invariant:
            raise ValueError("empty certificate: nothing to check")
        self.system = system
        self.prop = prop
        self.conjuncts = [system.resolve_defines(g) for g in invariant]
        for g in self.conjuncts:
            if g.width != 1:
                raise ValueError(
                    f"certificate conjunct must be width 1, got {g.width}")
        self.inv = E.bool_and(*self.conjuncts) if len(self.conjuncts) > 1 \
            else self.conjuncts[0]
        self.bad = system.resolve_defines(prop.bad)
        self.constraints = [system.resolve_defines(c)
                            for c in system.constraints]
        # Successor valuation, syntactically: states become their
        # next-state expressions, inputs become fresh primed variables.
        taken = {s.name for s in system.signals()}
        self.primed_inputs: dict[str, E.Expr] = {}
        for name, v in system.inputs.items():
            fresh = f"{name}__prime"
            while fresh in taken:
                fresh += "_"
            taken.add(fresh)
            self.primed_inputs[name] = E.var(fresh, v.width)
        step = {name: system.resolve_defines(system.next[name])
                for name in system.states}
        step.update(self.primed_inputs)
        self.inv_next = E.substitute(self.inv, step)
        self.constraints_next = [E.substitute(c, step)
                                 for c in self.constraints]
        self.bad_next = E.substitute(self.bad, step)

    @property
    def total_bits(self) -> int:
        state_bits = sum(v.width for v in self.system.states.values())
        input_bits = sum(v.width for v in self.system.inputs.values())
        return state_bits + 2 * input_bits

    # ------------------------------------------------------------------
    # Direct evaluation (reference semantics, exhaustive)
    # ------------------------------------------------------------------

    def run_exhaustive(self) -> CertificateReport:
        report = CertificateReport(self.prop.name, "exhaustive",
                                   conjuncts=len(self.conjuncts))
        sys_ = self.system
        state_vars = [(n, v.width) for n, v in sys_.states.items()]
        input_vars = [(n, v.width) for n, v in sys_.inputs.items()]
        next_names = list(sys_.states)
        next_exprs = [sys_.resolve_defines(sys_.next[n])
                      for n in next_names]

        def constrained(env: dict[str, int]) -> bool:
            return all(E.evaluate(c, env) for c in self.constraints)

        # Initiation: pin initialized states (init expressions may only
        # reference earlier states, exactly as the simulator evaluates
        # them), enumerate the uninitialized rest and the inputs.  An
        # init shape evaluation cannot order is handed to the SAT probe.
        resolved_init = {n: sys_.resolve_defines(sys_.init[n])
                         for n in sys_.init}
        evaluable = set(n for n, _ in state_vars if n not in sys_.init)
        for name in sys_.states:
            if name in resolved_init:
                if E.support(resolved_init[name]) - evaluable:
                    return self.run_sat()
                evaluable.add(name)
        free_states = [(n, w) for n, w in state_vars
                       if n not in sys_.init]
        done = False
        for partial in _assignments(free_states):
            env = dict(partial)
            for name in sys_.states:
                if name in resolved_init:
                    env[name] = E.evaluate(resolved_init[name], env)
            for inputs in _assignments(input_vars):
                full = {**env, **inputs}
                if not constrained(full):
                    continue
                if not E.evaluate(self.inv, full):
                    report.failures.append(
                        ObligationFailure("initiation", full))
                    done = True
                    break
            if done:
                break

        # Consecution and safety share the outer sweep.
        for current in _assignments(state_vars + input_vars):
            if not constrained(current):
                continue
            if not E.evaluate(self.inv, current):
                continue
            if E.evaluate(self.bad, current):
                report.failures.append(
                    ObligationFailure("safety", current))
                return report
            succ_states = dict(zip(
                next_names, E.evaluate_many(next_exprs, current)))
            for next_inputs in _assignments(input_vars):
                succ = {**succ_states, **next_inputs}
                if not constrained(succ):
                    continue
                if not E.evaluate(self.inv, succ):
                    report.failures.append(
                        ObligationFailure("consecution", current))
                    return report
        return report

    # ------------------------------------------------------------------
    # SAT probe (raw solver primitives, no engine machinery)
    # ------------------------------------------------------------------

    def run_sat(self) -> CertificateReport:
        report = CertificateReport(self.prop.name, "sat",
                                   conjuncts=len(self.conjuncts))
        init_eqs = []
        for name, init in self.system.init.items():
            init_eqs.append(E.eq(self.system.states[name],
                                 self.system.resolve_defines(init)))
        probes = [
            ("initiation",
             init_eqs + self.constraints + [E.not_(self.inv)]),
            ("consecution",
             [self.inv] + self.constraints + self.constraints_next +
             [E.not_(self.inv_next)]),
            ("safety",
             [self.inv] + self.constraints + [self.bad]),
        ]
        for obligation, asserts in probes:
            witness = self._sat_witness(asserts)
            if witness is not None:
                report.failures.append(
                    ObligationFailure(obligation, witness))
        return report

    def _sat_witness(self, asserts: list[E.Expr]
                     ) -> dict[str, int] | None:
        """Satisfying current-cycle valuation of ``asserts``, or None."""
        solver = Solver()
        blaster = BitBlaster()
        cnf = CnfBuilder(blaster.aig, solver)
        for v in list(self.system.inputs.values()) + \
                list(self.system.states.values()):
            blaster.blast(v)
        lits = [blaster.blast_bool(a) for a in asserts]
        for lit in lits:
            cnf.assert_lit(lit)
        if not solver.solve():
            return None
        witness: dict[str, int] = {}
        for name in list(self.system.inputs) + list(self.system.states):
            bits = blaster.var_bits(name)
            if bits is not None:
                witness[name] = cnf.bits_value(bits)
        return witness


def _assignments(vars_: list[tuple[str, int]]
                 ) -> Iterator[dict[str, int]]:
    """Every valuation of ``(name, width)`` variables, lexicographic."""
    total = sum(w for _, w in vars_)
    for packed in range(1 << total):
        env: dict[str, int] = {}
        offset = 0
        for name, width in vars_:
            env[name] = (packed >> offset) & ((1 << width) - 1)
            offset += width
        yield env
