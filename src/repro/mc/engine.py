"""High-level proof engine facade.

:class:`ProofEngine` is the "formal tool" box in the paper's Fig. 1/Fig. 2
diagrams: it owns a design, applies cone-of-influence reduction per
property, runs BMC or k-induction, manages the proven-lemma pool, and
reports uniform :class:`~repro.mc.result.CheckResult` records.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Mapping, Sequence

from repro.ir import expr as E
from repro.ir.passes import cone_of_influence
from repro.ir.system import TransitionSystem
from repro.mc.cache import ResultCache, run_cached
from repro.mc.portfolio import (DEFAULT_PORTFOLIO, PortfolioOutcome,
                                PortfolioScheduler, VerifyTask,
                                depth_options)
from repro.mc.property import SafetyProperty
from repro.mc.result import CheckResult, Status


@dataclass
class EngineConfig:
    """Engine-wide defaults (overridable per call)."""

    max_k: int = 10
    bmc_bound: int = 20
    use_coi: bool = True
    simple_path: bool = False


class ProofEngine:
    """The formal tool: proves properties, accumulates proven lemmas."""

    def __init__(self, system: TransitionSystem,
                 config: EngineConfig | None = None,
                 cache: ResultCache | None = None):
        system.validate()
        self.system = system
        self.config = config or EngineConfig()
        self.cache = cache
        # (name, good expr, valid_from) — proven global assumptions.
        self.lemmas: list[tuple[str, E.Expr, int]] = []

    # ------------------------------------------------------------------
    # Lemma pool
    # ------------------------------------------------------------------

    def add_lemma(self, name: str, good: E.Expr,
                  valid_from: int = 0) -> None:
        """Register an *already proven* invariant as a global assumption.

        ``valid_from`` exempts monitor warm-up cycles (a lemma built from
        ``$past`` chains says nothing before its chains fill).
        """
        if good.width != 1:
            raise ValueError("lemmas must be 1-bit expressions")
        self.lemmas.append((name, good, valid_from))

    def lemma_pairs(self) -> list[tuple[E.Expr, int]]:
        return [(g, vf) for _, g, vf in self.lemmas]

    def clear_lemmas(self) -> None:
        self.lemmas.clear()

    def add_invariant_lemmas(self, result: CheckResult,
                             prefix: str = "pdr_inv") -> int:
        """Re-assume a PDR invariant certificate as proven lemmas.

        Each conjunct of a PROVEN result's ``invariant`` holds in every
        reachable state (the conjunction is 1-step inductive and the
        conjuncts are its consequences), so they qualify as global
        assumptions for any other engine — this is the cross-feed that
        lets k-induction close proofs with PDR-discovered
        strengthenings.  Returns the number of lemmas added.
        """
        if result.status is not Status.PROVEN or not result.invariant:
            return 0
        added = 0
        for good in result.invariant:
            self.add_lemma(f"{prefix}_{added}", good, valid_from=0)
            added += 1
        return added

    # ------------------------------------------------------------------
    # Checks
    # ------------------------------------------------------------------

    def check(self, prop: SafetyProperty, strategy: str,
              use_lemmas: bool = True,
              extra_lemmas: list[tuple[E.Expr, int]] | None = None,
              **options) -> CheckResult:
        """Run one check through the strategy registry (and the cache).

        ``strategy`` is a spec string (``"bmc"``,
        ``"k_induction(simple_path=True)"``, ...); every specialized
        entry point below funnels through here, so caching and
        cone-of-influence scoping behave identically everywhere.
        """
        system = self.scoped_system(prop, extra_lemmas)
        lemmas = list(self.lemma_pairs()) if use_lemmas else []
        lemmas += list(extra_lemmas or [])
        return run_cached(strategy, system, prop, options,
                          lemmas=lemmas, cache=self.cache)

    def check_bmc(self, prop: SafetyProperty,
                  bound: int | None = None,
                  use_lemmas: bool = True,
                  conflict_budget: int | None = None) -> CheckResult:
        """Bounded search for a real counterexample."""
        return self.check(prop, "bmc", use_lemmas=use_lemmas,
                          bound=bound or self.config.bmc_bound,
                          conflict_budget=conflict_budget)

    def probe_bugs(self, prop: SafetyProperty,
                   bound: int | None = None,
                   conflict_budget: int = 4000) -> CheckResult:
        """Cheap single-shot bug triage (see :func:`repro.mc.bmc.bmc_probe`)."""
        return self.check(prop, "bmc_probe",
                          bound=bound or self.config.bmc_bound,
                          conflict_budget=conflict_budget)

    def prove(self, prop: SafetyProperty,
              max_k: int | None = None,
              use_lemmas: bool = True,
              extra_lemmas: list[tuple[E.Expr, int]] | None = None,
              simple_path: bool | None = None) -> CheckResult:
        """k-induction proof attempt (the paper's core proof method)."""
        return self.check(
            prop, "k_induction", use_lemmas=use_lemmas,
            extra_lemmas=extra_lemmas,
            max_k=max_k if max_k is not None else self.config.max_k,
            simple_path=self.config.simple_path
            if simple_path is None else simple_path)

    def prove_or_refute(self, prop: SafetyProperty,
                        max_k: int | None = None) -> CheckResult:
        """Induction first; on UNKNOWN, deepen BMC to look for a real bug."""
        result = self.prove(prop, max_k=max_k)
        if result.status is not Status.UNKNOWN:
            return result
        refutation = self.check_bmc(prop)
        if refutation.status is Status.VIOLATED:
            return refutation
        result.detail += (
            f"; no counterexample within {self.config.bmc_bound} cycles")
        return result

    # ------------------------------------------------------------------
    # Batch / portfolio dispatch
    # ------------------------------------------------------------------

    def _batch_tasks(self, props: Sequence[SafetyProperty],
                     use_lemmas: bool = True,
                     per_prop_strategies: Mapping[str, Sequence[str]] |
                     None = None) -> list[VerifyTask]:
        lemmas = self.lemma_pairs() if use_lemmas else []
        overrides = per_prop_strategies or {}
        return [VerifyTask(self.scoped_system(p), p, list(lemmas),
                           strategies=tuple(overrides[p.name])
                           if p.name in overrides else None)
                for p in props]

    def _scheduler(self, jobs: int,
                   strategies: Sequence[str] | None,
                   strategy_options: Mapping[str, Mapping] | None
                   ) -> PortfolioScheduler:
        if strategies is None:
            strategies = DEFAULT_PORTFOLIO
        if strategy_options is None:
            strategy_options = depth_options(
                strategies, max_k=self.config.max_k,
                bound=self.config.bmc_bound,
                simple_path=self.config.simple_path)
        return PortfolioScheduler(jobs=jobs, strategies=strategies,
                                  strategy_options=strategy_options,
                                  cache=self.cache)

    def check_portfolio(self, props: Sequence[SafetyProperty] |
                        SafetyProperty,
                        jobs: int = 1,
                        strategies: Sequence[str] | None = None,
                        strategy_options: Mapping[str, Mapping] |
                        None = None,
                        use_lemmas: bool = True,
                        per_prop_strategies: Mapping[str, Sequence[str]] |
                        None = None
                        ) -> Iterator[PortfolioOutcome]:
        """Race complementary strategies over a batch of properties.

        Each property is cone-of-influence scoped independently, the
        whole batch fans out over ``jobs`` worker processes, and
        outcomes stream back in completion order.
        ``per_prop_strategies`` overrides the race for named properties
        (spec strings with inline options, e.g. per-property depths).
        """
        if isinstance(props, SafetyProperty):
            props = [props]
        scheduler = self._scheduler(jobs, strategies, strategy_options)
        return scheduler.stream(self._batch_tasks(
            props, use_lemmas, per_prop_strategies=per_prop_strategies))

    def prove_all(self, props: Sequence[SafetyProperty],
                  jobs: int = 1,
                  strategies: Sequence[str] | None = None,
                  strategy_options: Mapping[str, Mapping] | None = None,
                  use_lemmas: bool = True) -> list[CheckResult]:
        """Batch verification; results aligned with ``props`` order."""
        by_name: dict[str, CheckResult] = {}
        for outcome in self.check_portfolio(
                props, jobs=jobs, strategies=strategies,
                strategy_options=strategy_options, use_lemmas=use_lemmas):
            by_name[outcome.property_name] = outcome.result
        return [by_name[p.name] for p in props]

    # ------------------------------------------------------------------

    def scoped_system(self, prop: SafetyProperty,
                      extra_lemmas: list[tuple[E.Expr, int]] | None = None
                      ) -> TransitionSystem:
        """Cone-of-influence-reduce the design for this query.

        The reduction must keep everything the property, the active lemmas,
        and the environment constraints mention; lemma expressions are
        roots too because they are asserted at every frame.  Public
        because cache keys fingerprint the scoped system: any layer that
        builds its own :class:`VerifyTask`s (the campaign scheduler)
        must scope through here or its keys silently fork.
        """
        if not self.config.use_coi:
            return self.system
        roots = [self.system.resolve_defines(prop.bad)]
        for _, good, _vf in self.lemmas:
            roots.append(self.system.resolve_defines(good))
        for good, _vf in (extra_lemmas or []):
            roots.append(self.system.resolve_defines(good))
        roots.extend(self.system.constraints)
        return cone_of_influence(self.system, roots)
