"""Results and statistics for model-checking runs."""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.trace.trace import Trace


class Status(Enum):
    """Verdict of a check."""

    PROVEN = "proven"            # property holds for all time
    VIOLATED = "violated"        # real counterexample from the initial state
    BOUNDED_OK = "bounded_ok"    # no CEX within the explored bound (BMC)
    UNKNOWN = "unknown"          # induction did not converge within max_k

    @property
    def conclusive(self) -> bool:
        return self in (Status.PROVEN, Status.VIOLATED)


@dataclass
class ProofStats:
    """Aggregated effort measures for one verification call.

    ``proof time`` in the paper's sense — the cost a verification engineer
    waits for — maps to ``wall_seconds``; conflicts/decisions give a
    machine-independent effort measure the benchmarks also report.
    """

    wall_seconds: float = 0.0
    sat_queries: int = 0
    conflicts: int = 0
    decisions: int = 0
    propagations: int = 0
    clauses: int = 0
    variables: int = 0
    max_depth: int = 0

    def merge_from(self, snapshot: "ProofStats") -> None:
        """Fold one solver snapshot into an aggregate, summing everything.

        This is the single merge point for per-solver snapshots
        (``FrameSolver.stats_snapshot()``): BMC merges its one frame, a
        k-induction run merges base and step, and portfolio aggregation
        merges any number of runs — all with identical summing semantics,
        so effort counters never double-count or silently overwrite.
        """
        self.sat_queries += snapshot.sat_queries
        self.conflicts += snapshot.conflicts
        self.decisions += snapshot.decisions
        self.propagations += snapshot.propagations
        self.clauses += snapshot.clauses
        self.variables += snapshot.variables
        self.max_depth = max(self.max_depth, snapshot.max_depth)

    def accumulate(self, other: "ProofStats") -> None:
        self.wall_seconds += other.wall_seconds
        self.sat_queries += other.sat_queries
        self.conflicts += other.conflicts
        self.decisions += other.decisions
        self.propagations += other.propagations
        self.clauses = max(self.clauses, other.clauses)
        self.variables = max(self.variables, other.variables)
        self.max_depth = max(self.max_depth, other.max_depth)


@dataclass
class CheckResult:
    """Outcome of a BMC or k-induction run on one property."""

    property_name: str
    status: Status
    k: int = 0
    cex: Trace | None = None        # initial-state-rooted counterexample
    step_cex: Trace | None = None   # induction-step CEX (arbitrary pre-state)
    stats: ProofStats = field(default_factory=ProofStats)
    detail: str = ""

    @property
    def proven(self) -> bool:
        return self.status is Status.PROVEN

    @property
    def violated(self) -> bool:
        return self.status is Status.VIOLATED

    def one_line(self) -> str:
        core = f"{self.property_name}: {self.status.value} (k={self.k}, " \
               f"{self.stats.wall_seconds:.3f}s, " \
               f"{self.stats.conflicts} conflicts)"
        return core if not self.detail else f"{core} — {self.detail}"
