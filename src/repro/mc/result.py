"""Results and statistics for model-checking runs."""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.ir import expr as E
from repro.trace.trace import Trace


class Status(Enum):
    """Verdict of a check."""

    PROVEN = "proven"            # property holds for all time
    VIOLATED = "violated"        # real counterexample from the initial state
    BOUNDED_OK = "bounded_ok"    # no CEX within the explored bound (BMC)
    UNKNOWN = "unknown"          # induction did not converge within max_k

    @property
    def conclusive(self) -> bool:
        return self in (Status.PROVEN, Status.VIOLATED)


@dataclass
class ProofStats:
    """Aggregated effort measures for one verification call.

    ``proof time`` in the paper's sense — the cost a verification engineer
    waits for — maps to ``wall_seconds``; conflicts/decisions give a
    machine-independent effort measure the benchmarks also report.
    """

    wall_seconds: float = 0.0
    sat_queries: int = 0
    conflicts: int = 0
    decisions: int = 0
    propagations: int = 0
    clauses: int = 0
    variables: int = 0
    max_depth: int = 0
    restarts: int = 0
    learned_clauses: int = 0
    learned_literals: int = 0
    #: Time spent inside the SAT search itself (a subset of
    #: ``wall_seconds``, which also covers blasting and encoding).
    solve_seconds: float = 0.0

    @classmethod
    def from_solver(cls, solver_stats, sat_queries: int) -> "ProofStats":
        """Snapshot one solver's cumulative counters.

        The single mapping from :class:`repro.sat.solver.SatStats` to
        proof-level stats — every solving context (``FrameSolver``,
        PDR's ``PdrContext``) snapshots through here, so a counter
        added to the solver can never reach only half the engines.
        """
        return cls(
            sat_queries=sat_queries,
            conflicts=solver_stats.conflicts,
            decisions=solver_stats.decisions,
            propagations=solver_stats.propagations,
            clauses=solver_stats.clauses_added,
            variables=solver_stats.max_vars,
            restarts=solver_stats.restarts,
            learned_clauses=solver_stats.learned,
            learned_literals=solver_stats.learned_literals,
            solve_seconds=solver_stats.solve_seconds,
        )

    def merge_from(self, snapshot: "ProofStats") -> None:
        """Fold one solver snapshot into an aggregate, summing everything.

        This is the single merge point for per-solver snapshots
        (``FrameSolver.stats_snapshot()``): BMC merges its one frame, a
        k-induction run merges base and step, PDR merges its frame
        context, and portfolio aggregation merges any number of runs —
        all with identical summing semantics, so effort counters never
        double-count or silently overwrite.
        """
        self.sat_queries += snapshot.sat_queries
        self.conflicts += snapshot.conflicts
        self.decisions += snapshot.decisions
        self.propagations += snapshot.propagations
        self.clauses += snapshot.clauses
        self.variables += snapshot.variables
        self.max_depth = max(self.max_depth, snapshot.max_depth)
        self.restarts += snapshot.restarts
        self.learned_clauses += snapshot.learned_clauses
        self.learned_literals += snapshot.learned_literals
        self.solve_seconds += snapshot.solve_seconds

    def accumulate(self, other: "ProofStats") -> None:
        self.wall_seconds += other.wall_seconds
        self.sat_queries += other.sat_queries
        self.conflicts += other.conflicts
        self.decisions += other.decisions
        self.propagations += other.propagations
        self.clauses = max(self.clauses, other.clauses)
        self.variables = max(self.variables, other.variables)
        self.max_depth = max(self.max_depth, other.max_depth)
        self.restarts += other.restarts
        self.learned_clauses += other.learned_clauses
        self.learned_literals += other.learned_literals
        self.solve_seconds += other.solve_seconds

    def effort_dict(self) -> dict[str, int]:
        """The machine-independent solver-effort counters, for reports.

        The campaign JSON embeds this per result row so engine
        comparisons (E9) can rank strategies by conflicts/decisions/
        propagations rather than wall time alone.
        """
        return {
            "sat_queries": self.sat_queries,
            "conflicts": self.conflicts,
            "decisions": self.decisions,
            "propagations": self.propagations,
            "restarts": self.restarts,
            "learned_clauses": self.learned_clauses,
        }


@dataclass
class CheckResult:
    """Outcome of a BMC or k-induction run on one property."""

    property_name: str
    status: Status
    k: int = 0
    cex: Trace | None = None        # initial-state-rooted counterexample
    step_cex: Trace | None = None   # induction-step CEX (arbitrary pre-state)
    stats: ProofStats = field(default_factory=ProofStats)
    detail: str = ""
    #: PDR's proof certificate: width-1 expressions over the system's
    #: state variables whose conjunction is a 1-step inductive invariant
    #: implying the property (under the system's constraints).  ``None``
    #: for engines without an invariant certificate and for refutations.
    #: Each conjunct individually holds in every reachable state, so the
    #: flows may re-assume them as proven lemmas.
    invariant: list[E.Expr] | None = None

    @property
    def proven(self) -> bool:
        return self.status is Status.PROVEN

    @property
    def violated(self) -> bool:
        return self.status is Status.VIOLATED

    def one_line(self) -> str:
        core = f"{self.property_name}: {self.status.value} (k={self.k}, " \
               f"{self.stats.wall_seconds:.3f}s, " \
               f"{self.stats.conflicts} conflicts)"
        return core if not self.detail else f"{core} — {self.detail}"
