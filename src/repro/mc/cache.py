"""Content-keyed cache of model-checking results.

The paper's flows re-run the formal tool constantly over *identical*
queries: every Houdini round re-screens the surviving conjunction, the
repair loop re-proves the target between LLM calls, and benchmark sweeps
repeat whole configurations.  A query is fully determined by

* the transition system's content (inputs/states/init/next/defines/
  constraints — structurally, not by object identity),
* the property's ``bad`` expression and warm-up offset,
* the assumed lemma set (order-insensitive),
* the strategy spec and its options,

so results can be reused whenever that fingerprint recurs — the solver is
deterministic.  Keys are SHA-256 over a canonical rendering; values are
returned as shallow copies so callers that annotate ``detail`` or
accumulate stats never corrupt the cached record.
"""

from __future__ import annotations

import hashlib
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, replace
from typing import Mapping, Protocol, runtime_checkable

from repro.ir import expr as E
from repro.ir.system import TransitionSystem
from repro.mc.property import SafetyProperty
from repro.mc.result import CheckResult
from repro.obs import events as _events
from repro.obs import metrics as _metrics
from repro.obs import tracing as _tracing

# Every check funnels through run_cached, so one counter here covers
# the engine, Houdini, and the sequential scheduler path alike.
_M_CHECKS = _metrics.counter(
    "repro_checks_total", "model-checking queries by strategy/origin",
    labels=("strategy", "origin"))


def expr_fingerprint(root: E.Expr) -> str:
    """Canonical structural rendering of one expression DAG."""
    return E.structural_signature(root, {})


def system_fingerprint(system: TransitionSystem) -> str:
    """Digest of a transition system's *content*.

    Excludes the system's name: a cone-of-influence reduction of the same
    design for the same property yields the same fingerprint no matter
    which session built it.
    """
    h = hashlib.sha256()
    for name, v in sorted(system.inputs.items()):
        h.update(f"i:{name}:{v.width};".encode())
    for name, v in sorted(system.states.items()):
        h.update(f"s:{name}:{v.width};".encode())
    for section, mapping in (("init", system.init), ("next", system.next),
                             ("def", system.defines)):
        for name, e in sorted(mapping.items()):
            h.update(f"{section}:{name}=".encode())
            h.update(expr_fingerprint(e).encode())
            h.update(b";")
    for c in sorted(expr_fingerprint(c) for c in system.constraints):
        h.update(b"c:")
        h.update(c.encode())
        h.update(b";")
    return h.hexdigest()


def query_key(system: TransitionSystem, prop: SafetyProperty,
              strategy: str, options: Mapping,
              lemmas: list[tuple[E.Expr, int]] | None = None) -> str:
    """The cache key for one fully-specified check invocation."""
    h = hashlib.sha256()
    h.update(system_fingerprint(system).encode())
    h.update(b"|p:")
    h.update(expr_fingerprint(prop.bad).encode())
    h.update(f":{prop.valid_from}".encode())
    h.update(b"|l:")
    for sig in sorted(f"{expr_fingerprint(g)}@{vf}"
                      for g, vf in (lemmas or [])):
        h.update(sig.encode())
        h.update(b";")
    h.update(b"|s:")
    h.update(strategy.encode())
    for k in sorted(options):
        h.update(f":{k}={options[k]!r}".encode())
    return h.hexdigest()


@runtime_checkable
class CacheBacking(Protocol):
    """A persistent second tier behind :class:`ResultCache`.

    ``load`` answers memory misses; ``put`` writes through every stored
    result.  Implementations must tolerate concurrent callers and must
    never raise on routine failures (a broken backing degrades the cache
    to memory-only, it does not break proving) — the canonical
    implementation is :class:`repro.campaign.store.ProofStore`.
    """

    def load(self, key: str) -> CheckResult | None: ...

    def store(self, key: str, result: CheckResult) -> None: ...


@dataclass
class CacheStats:
    """Hit/miss/store counters (the benchmark's headline numbers).

    ``disk_hits`` is the subset of ``hits`` answered by the persistent
    backing tier rather than the in-memory LRU; ``hits - disk_hits`` is
    therefore the memory-tier hit count.
    """

    hits: int = 0
    misses: int = 0
    stores: int = 0
    evictions: int = 0
    disk_hits: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    @property
    def memory_hits(self) -> int:
        return self.hits - self.disk_hits

    def one_line(self) -> str:
        disk = f" [{self.disk_hits} from disk]" if self.disk_hits else ""
        return (f"cache: {self.hits} hits / {self.misses} misses "
                f"({self.hit_rate:.0%}), {self.stores} stored, "
                f"{self.evictions} evicted{disk}")

    def since(self, earlier: "CacheStats") -> "CacheStats":
        """The traffic between an ``earlier`` snapshot and this one.

        Counters are monotone (``clear()`` counts its drops as
        evictions instead of resetting anything), but snapshots taken
        around an externally reset stats object must still not report
        negative traffic — differences clamp at zero.
        """
        return CacheStats(
            hits=max(0, self.hits - earlier.hits),
            misses=max(0, self.misses - earlier.misses),
            stores=max(0, self.stores - earlier.stores),
            evictions=max(0, self.evictions - earlier.evictions),
            disk_hits=max(0, self.disk_hits - earlier.disk_hits))


class ResultCache:
    """Thread-safe LRU cache of :class:`CheckResult` keyed by query content.

    Shared freely: between the strategies racing inside one portfolio
    batch, between Houdini rounds, between flow iterations, and across a
    whole :class:`~repro.flow.session.VerificationSession`.

    With a ``backing`` (any :class:`CacheBacking`, typically the campaign
    subsystem's SQLite :class:`~repro.campaign.store.ProofStore`) the
    cache becomes two-tier: memory misses fall through to the backing,
    backing hits are promoted into the LRU and counted as ``disk_hits``,
    and every ``put`` writes through — so a fresh process warm-starts
    from whatever earlier runs proved.
    """

    def __init__(self, max_entries: int = 4096,
                 backing: CacheBacking | None = None):
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.max_entries = max_entries
        self.backing = backing
        self.stats = CacheStats()
        self._entries: OrderedDict[str, CheckResult] = OrderedDict()
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return len(self._entries)

    def _insert(self, key: str, result: CheckResult) -> None:
        if key not in self._entries and \
                len(self._entries) >= self.max_entries:
            self._entries.popitem(last=False)
            self.stats.evictions += 1
        self._entries[key] = result
        self._entries.move_to_end(key)

    def get(self, key: str) -> CheckResult | None:
        with self._lock:
            result = self._entries.get(key)
            if result is not None:
                self._entries.move_to_end(key)
                self.stats.hits += 1
                # Shallow per-field copy: callers mutate `detail` (e.g.
                # prove_or_refute appends a note) and must not see each
                # other's annotations or share a stats object.
                return replace(result, stats=replace(result.stats))
            if self.backing is not None:
                try:
                    loaded = self.backing.load(key)
                except Exception:
                    loaded = None
                if loaded is not None:
                    # Promote to the memory tier; not a `store` (nothing
                    # new was proven) but evictions it causes are real.
                    # The caller gets its own copy too: a backing may
                    # return a retained object, and disk-tier hits must
                    # obey the same no-aliasing contract as memory hits.
                    self._insert(key, replace(loaded,
                                              stats=replace(loaded.stats)))
                    self.stats.hits += 1
                    self.stats.disk_hits += 1
                    return replace(loaded, stats=replace(loaded.stats))
            self.stats.misses += 1
            return None

    def put(self, key: str, result: CheckResult) -> None:
        with self._lock:
            self._insert(key, replace(result, stats=replace(result.stats)))
            self.stats.stores += 1
            if self.backing is not None:
                try:
                    self.backing.store(key, result)
                except Exception:
                    pass  # a broken disk tier must never break proving

    def clear(self) -> None:
        """Drop the memory tier (the backing, if any, is untouched).

        Cleared entries count as evictions so the stats stay monotone
        and a ``since()`` window spanning a ``clear()`` stays honest.
        """
        with self._lock:
            self.stats.evictions += len(self._entries)
            self._entries.clear()


def strategy_cacheable(strategy, options: Mapping) -> bool:
    """May this invocation's result be cached under its query key?

    The key fingerprints the system/property/lemmas/options — which is
    only sound when the strategy is a deterministic function of those.
    A strategy can opt specific invocations out by exposing
    ``cacheable(options)`` (e.g. PDR runs seeded from a proof store:
    their outcome improves as the store warms, and a cached early
    UNKNOWN would pin the property to its worst attempt forever).
    """
    probe = getattr(strategy, "cacheable", None)
    return True if probe is None else bool(probe(options))


def emit_check_events(system_name: str, prop_name: str,
                      strategy_name: str, result: CheckResult,
                      wall_seconds: float, origin: str,
                      tier: str | None = None) -> None:
    """Journal one finished check (plus the slow-solve dump when due).

    Shared by both check paths — :func:`run_cached` and the pool
    workers' :func:`~repro.mc.strategy.run_check_task` — so the event
    schema cannot drift between them.  Solver-path checks slower than
    the journal's threshold additionally emit a ``slow_solve`` event
    carrying the full solver-effort snapshot.
    """
    fields = {"design": system_name, "property": prop_name,
              "strategy": strategy_name, "status": result.status.value,
              "origin": origin, "k": result.k,
              "wall_seconds": round(wall_seconds, 6)}
    if tier is not None:
        fields["tier"] = tier
    _events.emit("check_finish", **fields)
    threshold = _events.slow_solve_threshold()
    if origin == "solver" and threshold is not None \
            and wall_seconds >= threshold:
        _events.emit(
            "slow_solve", design=system_name, property=prop_name,
            strategy=strategy_name, status=result.status.value,
            k=result.k, wall_seconds=round(wall_seconds, 6),
            threshold=threshold,
            solve_seconds=round(result.stats.solve_seconds, 6),
            effort=result.stats.effort_dict())


def run_cached(strategy_spec: str, system: TransitionSystem,
               prop: SafetyProperty, options: Mapping,
               lemmas: list[tuple[E.Expr, int]] | None = None,
               cache: ResultCache | None = None) -> CheckResult:
    """Run one check through the registry, consulting ``cache`` if given.

    The single choke point the engine, Houdini, and the sequential
    scheduler path all use, so every layer gets identical keying.
    """
    from repro.mc.strategy import canonical_options, resolve_strategy

    strategy, resolved = resolve_strategy(strategy_spec)
    resolved.update(options)
    key = None
    if cache is not None and strategy_cacheable(strategy, resolved):
        key = query_key(system, prop, strategy.name,
                        canonical_options(strategy, resolved), lemmas)
        disk_before = cache.stats.disk_hits
        hit = cache.get(key)
        if hit is not None:
            _M_CHECKS.labels(strategy.name, "cache").inc()
            tier = "disk" if cache.stats.disk_hits > disk_before \
                else "memory"
            emit_check_events(system.name, prop.name, strategy.name,
                              hit, 0.0, "cache", tier=tier)
            return hit
    with _tracing.span("check", strategy=strategy.name,
                       property=prop.name) as sp:
        _events.emit("check_start", design=system.name,
                     property=prop.name, strategy=strategy.name)
        started = time.perf_counter()
        result = strategy.run(system, prop, lemmas=list(lemmas or []),
                              **resolved)
        wall = time.perf_counter() - started
        if sp is not None:
            sp.attrs["status"] = result.status.value
        emit_check_events(system.name, prop.name, strategy.name,
                          result, wall, "solver")
    _M_CHECKS.labels(strategy.name, "solver").inc()
    if cache is not None and key is not None:
        cache.put(key, result)
    return result
