"""The glue between unrolled formulas and the SAT solver.

A :class:`FrameSolver` owns one SAT solver, one AIG, and one bit-blaster,
and exposes expression-level asserts, expression-level assumptions, and
model extraction back to the word level.  BMC and k-induction each drive
one (or two) of these incrementally: clauses for already-unrolled frames
are never re-encoded as the bound grows.
"""

from __future__ import annotations

import time

from repro.aig.bitblast import BitBlaster
from repro.aig.cnf import CnfBuilder
from repro.ir import expr as E
from repro.ir.system import TransitionSystem
from repro.mc.result import ProofStats
from repro.mc.unroll import Unroller, timed_name
from repro.sat.solver import Solver
from repro.trace.trace import Trace, TraceKind


class FrameSolver:
    """Incremental SAT context for unrolled transition-system formulas."""

    def __init__(self, system: TransitionSystem):
        self.system = system
        self.unroller = Unroller(system)
        self.solver = Solver()
        self.blaster = BitBlaster()
        self.cnf = CnfBuilder(self.blaster.aig, self.solver)
        self.queries = 0

    # ------------------------------------------------------------------
    # Assertions / assumptions at the expression level
    # ------------------------------------------------------------------

    def assert_expr(self, timed_expr: E.Expr) -> None:
        """Permanently assert a width-1 timed expression."""
        lit = self.blaster.blast_bool(timed_expr)
        self.cnf.assert_lit(lit)

    def assert_at(self, expr: E.Expr, t: int) -> None:
        """Assert an (untimed, resolved) expression at time ``t``."""
        self.assert_expr(self.unroller.at_time(expr, t))

    def assumption_for(self, timed_expr: E.Expr) -> int:
        """DIMACS assumption literal for a width-1 timed expression."""
        lit = self.blaster.blast_bool(timed_expr)
        return self.cnf.assumption(lit)

    def solve(self, assumptions: list[int] | None = None) -> bool:
        self.cnf.encode_new_nodes()
        self.queries += 1
        return self.solver.solve(assumptions or [])

    def solve_limited(self, assumptions: list[int] | None = None,
                      conflict_budget: int | None = None) -> bool | None:
        self.cnf.encode_new_nodes()
        self.queries += 1
        return self.solver.solve_limited(assumptions or [],
                                         conflict_budget=conflict_budget)

    # ------------------------------------------------------------------
    # Frame plumbing
    # ------------------------------------------------------------------

    def add_init(self) -> None:
        for eq_expr in self.unroller.init_constraints():
            self.assert_expr(eq_expr)
        for c in self.unroller.constraints_at(0):
            self.assert_expr(c)

    def add_frame(self, t: int) -> None:
        """Assert transition t -> t+1 plus constraints at t+1.

        Constraints at time 0 are added by :meth:`add_init` (BMC) or by the
        caller (induction step case, which has no init).
        """
        for eq_expr in self.unroller.transition(t):
            self.assert_expr(eq_expr)
        for c in self.unroller.constraints_at(t + 1):
            self.assert_expr(c)

    # ------------------------------------------------------------------
    # Model extraction
    # ------------------------------------------------------------------

    def timed_value(self, name: str, t: int) -> int:
        """Value of design signal ``name`` at time ``t`` in the model."""
        tname = timed_name(name, t)
        bits = self.blaster.var_bits(tname)
        if bits is None:
            # Variable never appeared in any asserted formula: free.
            return 0
        return self.cnf.bits_value(bits)

    def extract_trace(self, length: int, kind: TraceKind,
                      property_name: str | None = None,
                      note: str = "") -> Trace:
        """Pull a full trace of the current model for frames 0..length-1."""
        envs = []
        for t in range(length):
            env = {}
            for name in list(self.system.inputs) + list(self.system.states):
                env[name] = self.timed_value(name, t)
            envs.append(env)
        return Trace.from_model_values(self.system, envs, kind,
                                       property_name=property_name,
                                       note=note)

    # ------------------------------------------------------------------

    def stats_snapshot(self) -> ProofStats:
        return ProofStats.from_solver(self.solver.stats, self.queries)


class StatsTimer:
    """Context manager measuring wall time into a ProofStats."""

    def __init__(self, stats: ProofStats):
        self.stats = stats
        self._start = 0.0

    def __enter__(self) -> "StatsTimer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self.stats.wall_seconds += time.perf_counter() - self._start
