"""k-induction — the proof method the paper's flows augment.

Induction with increasing depth ``k`` runs two checks per depth
(Section II-A of the paper):

* **base case** — with the initial-state constraint: no bad state is
  reachable in the first ``k`` cycles (a BMC query);
* **inductive step** — *without* the initial-state constraint: from any
  ``k`` consecutive good states, the next state is also good.

Because the step case starts from an arbitrary (possibly *unreachable*)
state, it can fail even for true properties; the counterexample it
produces is then not a bug but a witness of a too-weak induction
hypothesis.  That step CEX is exactly what the paper's Fig. 2 flow feeds
to the LLM, and proven helper assertions re-enter here as ``lemmas``
constraining every frame of both cases.

The optional simple-path constraint (all states in the step window
pairwise distinct) makes the method complete for finite systems at the
cost of quadratically many disequalities; the paper's designs do not need
it and the E6 ablation benchmark quantifies why.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ir import expr as E
from repro.ir.system import TransitionSystem
from repro.mc.frame import FrameSolver, StatsTimer
from repro.mc.property import SafetyProperty
from repro.mc.result import CheckResult, ProofStats, Status
from repro.trace.trace import Trace, TraceKind


@dataclass
class KInductionOptions:
    """Tuning for a k-induction run."""

    max_k: int = 10
    simple_path: bool = False
    keep_last_step_cex: bool = True


def k_induction(system: TransitionSystem, prop: SafetyProperty,
                options: KInductionOptions | None = None,
                lemmas: list[tuple[E.Expr, int]] | None = None
                ) -> CheckResult:
    """Prove ``prop`` by induction with increasing depth.

    Returns PROVEN (with the converging ``k``), VIOLATED (base-case CEX,
    a real bug), or UNKNOWN after ``max_k`` with the last induction-step
    counterexample attached for diagnosis — the input to the paper's
    repair flow.
    """
    opts = options or KInductionOptions()
    resolved = prop.resolved_against(system)
    lemma_pairs = [(system.resolve_defines(g), vf)
                   for g, vf in (lemmas or [])]
    stats = ProofStats()

    base = FrameSolver(system)
    step = FrameSolver(system)
    step_cex: Trace | None = None

    with StatsTimer(stats):
        # ---- time 0 plumbing -----------------------------------------
        # Base case: lemmas hold from their valid_from on.  Step case: the
        # window sits at arbitrary late absolute times, so every lemma
        # holds at every frame.
        base.add_init()
        for g, vf in lemma_pairs:
            if vf <= 0:
                base.assert_at(g, 0)
        for c in step.unroller.constraints_at(0):
            step.assert_expr(c)
        for g, _vf in lemma_pairs:
            step.assert_at(g, 0)

        base_depth = 0  # frames already unrolled in the base solver

        for k in range(1, opts.max_k + 1):
            stats.max_depth = k
            # ---- base case: no bad within the first k+valid_from cycles.
            # (The extra valid_from padding closes the warm-up gap between
            # the base window and the first step-case application.)
            base_bound = k + resolved.valid_from
            while base_depth < base_bound:
                t = base_depth
                if t > 0:
                    base.add_frame(t - 1)
                    for g, vf in lemma_pairs:
                        if vf <= t:
                            base.assert_at(g, t)
                if t >= resolved.valid_from:
                    bad_t = base.unroller.at_time(resolved.bad, t)
                    if base.solve([base.assumption_for(bad_t)]):
                        trace = base.extract_trace(
                            t + 1, TraceKind.BMC_CEX,
                            property_name=prop.name,
                            note=f"base case fails at cycle {t}")
                        _collect(stats, base, step)
                        return CheckResult(
                            prop.name, Status.VIOLATED, k=t, cex=trace,
                            stats=stats,
                            detail=f"base-case counterexample at depth {t}")
                base_depth += 1

            # ---- inductive step: good at 0..k-1, bad at k ---------------
            step.add_frame(k - 1)
            for g, _vf in lemma_pairs:
                step.assert_at(g, k)
            good_prev = step.unroller.at_time(resolved.good, k - 1)
            step.assert_expr(good_prev)
            if opts.simple_path:
                for earlier in range(k):
                    step.assert_expr(
                        step.unroller.state_distinct(earlier, k))
            bad_k = step.unroller.at_time(resolved.bad, k)
            if not step.solve([step.assumption_for(bad_k)]):
                _collect(stats, base, step)
                return CheckResult(
                    prop.name, Status.PROVEN, k=k, step_cex=None,
                    stats=stats, detail=f"induction converged at k={k}")
            if opts.keep_last_step_cex:
                step_cex = step.extract_trace(
                    k + 1, TraceKind.STEP_CEX,
                    property_name=prop.name,
                    note=f"inductive step fails at k={k}")

    _collect(stats, base, step)
    return CheckResult(prop.name, Status.UNKNOWN, k=opts.max_k,
                       step_cex=step_cex, stats=stats,
                       detail=f"induction did not converge by k={opts.max_k}")


def _collect(stats: ProofStats, base: FrameSolver,
             step: FrameSolver) -> None:
    for frame in (base, step):
        stats.merge_from(frame.stats_snapshot())
