"""Bounded model checking.

BMC finds real, initial-state-rooted counterexamples: the formula
``init ∧ trans(0..t-1) ∧ constraints ∧ bad@t`` is checked for each depth
``t`` up to the bound, reusing one incremental solver (the ``bad@t`` check
rides on an assumption literal so it never pollutes later depths).

As the paper's background section notes, a BMC pass guarantees correctness
only up to the analysis bound — it is the *base case* machinery that
k-induction builds on to get unbounded proofs.
"""

from __future__ import annotations

from repro.ir import expr as E
from repro.ir.system import TransitionSystem
from repro.mc.frame import FrameSolver, StatsTimer
from repro.mc.property import SafetyProperty
from repro.mc.result import CheckResult, ProofStats, Status
from repro.trace.trace import TraceKind


def bmc(system: TransitionSystem, prop: SafetyProperty, bound: int,
        lemmas: list[tuple[E.Expr, int]] | None = None,
        conflict_budget: int | None = None,
        frame: FrameSolver | None = None) -> CheckResult:
    """Search for a counterexample to ``prop`` within ``bound`` cycles.

    ``lemmas`` are ``(good_expr, valid_from)`` pairs *already proven*
    invariant; each is assumed at every cycle from its ``valid_from`` on
    (monitor warm-up cycles are exempt).  Returns VIOLATED with a trace,
    or BOUNDED_OK.

    ``conflict_budget`` (total SAT conflicts across the run) turns the
    search into a best-effort probe: when exhausted, the result is
    BOUNDED_OK with an 'inconclusive' note — fine for bug *hunting*,
    never used for proofs.

    ``frame`` lets a caller supply a pre-built (and possibly
    differently-backed) :class:`FrameSolver` — the external-solver
    strategy reuses this exact loop over a subprocess-backed frame.
    """
    resolved = prop.resolved_against(system)
    lemma_pairs = [(system.resolve_defines(g), vf)
                   for g, vf in (lemmas or [])]
    stats = ProofStats()
    if frame is None:
        frame = FrameSolver(system)
    with StatsTimer(stats):
        frame.add_init()
        for g, vf in lemma_pairs:
            if vf <= 0:
                frame.assert_at(g, 0)
        for t in range(bound + 1):
            if t > 0:
                frame.add_frame(t - 1)
                for g, vf in lemma_pairs:
                    if vf <= t:
                        frame.assert_at(g, t)
            stats.max_depth = t
            if t < resolved.valid_from:
                continue
            bad_t = frame.unroller.at_time(resolved.bad, t)
            assumption = frame.assumption_for(bad_t)
            verdict = frame.solve_limited([assumption],
                                          conflict_budget=conflict_budget)
            if verdict is None:
                _merge(stats, frame)
                return CheckResult(
                    prop.name, Status.BOUNDED_OK, k=t, stats=stats,
                    detail=f"probe budget exhausted at depth {t} "
                           "(inconclusive)")
            if verdict:
                trace = frame.extract_trace(
                    t + 1, TraceKind.BMC_CEX,
                    property_name=prop.name,
                    note=f"bad at cycle {t}")
                _merge(stats, frame)
                return CheckResult(prop.name, Status.VIOLATED, k=t,
                                   cex=trace, stats=stats,
                                   detail=f"counterexample at depth {t}")
    _merge(stats, frame)
    return CheckResult(prop.name, Status.BOUNDED_OK, k=bound, stats=stats,
                       detail=f"no counterexample within {bound} cycles")


def _merge(stats: ProofStats, frame: FrameSolver) -> None:
    stats.merge_from(frame.stats_snapshot())


def bmc_probe(system: TransitionSystem, prop: SafetyProperty, bound: int,
              lemmas: list[tuple[E.Expr, int]] | None = None,
              conflict_budget: int = 4000) -> CheckResult:
    """Single-shot, budgeted bug probe.

    Unrolls the full window once and asks for *any* violation in it
    (one SAT query over the disjunction of per-cycle failures).  Real
    counterexamples — satisfiable queries — surface quickly; proving the
    absence of one within the window is deliberately cut off by the
    conflict budget, because callers use this as a cheap triage before
    more expensive reasoning, never as a proof.
    """
    resolved = prop.resolved_against(system)
    lemma_pairs = [(system.resolve_defines(g), vf)
                   for g, vf in (lemmas or [])]
    stats = ProofStats()
    frame = FrameSolver(system)
    with StatsTimer(stats):
        frame.add_init()
        bads = []
        for t in range(bound + 1):
            if t > 0:
                frame.add_frame(t - 1)
            for g, vf in lemma_pairs:
                if vf <= t:
                    frame.assert_at(g, t)
            if t >= resolved.valid_from:
                bads.append(frame.unroller.at_time(resolved.bad, t))
        stats.max_depth = bound
        any_bad = E.bool_or(*bads) if bads else E.false()
        assumption = frame.assumption_for(any_bad)
        verdict = frame.solve_limited([assumption],
                                      conflict_budget=conflict_budget)
    _merge(stats, frame)
    if verdict is None:
        return CheckResult(prop.name, Status.BOUNDED_OK, k=bound,
                           stats=stats,
                           detail="probe budget exhausted (inconclusive)")
    if not verdict:
        return CheckResult(prop.name, Status.BOUNDED_OK, k=bound,
                           stats=stats,
                           detail=f"no counterexample within {bound} cycles")
    # Locate the earliest failing cycle in the model for a tight trace.
    fail_at = bound
    for t in range(resolved.valid_from, bound + 1):
        bad_t = frame.unroller.at_time(resolved.bad, t)
        lit = frame.blaster.blast_bool(bad_t)
        if frame.cnf.lit_value(lit):
            fail_at = t
            break
    trace = frame.extract_trace(fail_at + 1, TraceKind.BMC_CEX,
                                property_name=prop.name,
                                note=f"bad at cycle {fail_at}")
    return CheckResult(prop.name, Status.VIOLATED, k=fail_at, cex=trace,
                       stats=stats,
                       detail=f"counterexample at depth {fail_at}")
