"""Time unrolling of transition systems.

The unroller maps every design variable ``v`` to timed copies ``v@t`` and
produces the standard path formulas:

* ``init_constraints()`` — time-0 equations for initialized registers;
* ``transition(t)`` — equations linking states at ``t`` and ``t+1``;
* ``constraints_at(t)`` — the system's environment assumptions at ``t``.

Timed variables are plain IR variables with mangled names, so the same
bit-blaster/CNF pipeline used for combinational formulas handles unrolled
paths with no special cases.
"""

from __future__ import annotations

from repro.ir import expr as E
from repro.ir.system import TransitionSystem

SEPARATOR = "@"


def timed_name(name: str, t: int) -> str:
    return f"{name}{SEPARATOR}{t}"


def untimed_name(name: str) -> tuple[str, int]:
    base, _, t = name.rpartition(SEPARATOR)
    return base, int(t)


class Unroller:
    """Produces timed copies of a system's expressions."""

    def __init__(self, system: TransitionSystem):
        system.validate()
        self.system = system
        self._maps: dict[int, dict[str, E.Expr]] = {}

    def timed_var(self, name: str, t: int) -> E.Expr:
        """The timed copy of input/state variable ``name`` at time ``t``."""
        return self._mapping(t)[name]

    def at_time(self, expr: E.Expr, t: int) -> E.Expr:
        """Rewrite an expression over design vars into its time-``t`` copy.

        ``expr`` must already be resolved (no define names); the system's
        :meth:`~repro.ir.system.TransitionSystem.resolve_defines` does that.
        """
        return E.substitute(expr, self._mapping(t))

    def init_constraints(self) -> list[E.Expr]:
        """Equations pinning initialized registers at time 0."""
        out = []
        for name, init_expr in self.system.init.items():
            out.append(E.eq(self.timed_var(name, 0),
                            self.at_time(init_expr, 0)))
        return out

    def transition(self, t: int) -> list[E.Expr]:
        """Equations defining states at ``t+1`` from the frame at ``t``."""
        out = []
        for name, next_expr in self.system.next.items():
            out.append(E.eq(self.timed_var(name, t + 1),
                            self.at_time(next_expr, t)))
        return out

    def constraints_at(self, t: int) -> list[E.Expr]:
        """Environment assumptions instantiated at time ``t``."""
        return [self.at_time(c, t) for c in self.system.constraints]

    def state_distinct(self, t1: int, t2: int) -> E.Expr:
        """At least one register differs between frames ``t1`` and ``t2``.

        Used for the optional simple-path constraint that makes k-induction
        complete for finite systems.
        """
        diffs = [E.ne(self.timed_var(name, t1), self.timed_var(name, t2))
                 for name in self.system.states]
        if not diffs:
            return E.false()
        return E.bool_or(*diffs)

    def env_at(self, values: dict[str, int], t: int) -> dict[str, int]:
        """Project a timed valuation (``v@t`` keys) onto frame ``t``."""
        frame = {}
        for name in list(self.system.inputs) + list(self.system.states):
            frame[name] = values[timed_name(name, t)]
        return frame

    def _mapping(self, t: int) -> dict[str, E.Expr]:
        found = self._maps.get(t)
        if found is None:
            found = {}
            for name, v in self.system.inputs.items():
                found[name] = E.var(timed_name(name, t), v.width)
            for name, v in self.system.states.items():
                found[name] = E.var(timed_name(name, t), v.width)
            self._maps[t] = found
        return found
