"""Safety properties as the model checker consumes them.

A :class:`SafetyProperty` is a *compiled* property: a width-1 ``bad``
expression over a (possibly monitor-augmented) transition system, plus the
number of warm-up cycles the monitor needs before the check is meaningful
(``valid_from`` — e.g. ``$past`` chains).  The SVA frontend produces these;
hand-written checks can construct them directly.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import PropertyError
from repro.ir import expr as E
from repro.ir.system import TransitionSystem


@dataclass
class SafetyProperty:
    """A compiled safety check: "``bad`` never holds from ``valid_from`` on"."""

    name: str
    bad: E.Expr
    valid_from: int = 0
    source_text: str = ""

    def __post_init__(self) -> None:
        if self.bad.width != 1:
            raise PropertyError(
                f"property {self.name!r}: bad expression must be 1-bit")
        if self.valid_from < 0:
            raise PropertyError(
                f"property {self.name!r}: negative valid_from")

    @staticmethod
    def from_invariant(name: str, good: E.Expr, valid_from: int = 0,
                       source_text: str = "") -> "SafetyProperty":
        """Build from the *good* (invariant) polarity."""
        return SafetyProperty(name, E.not_(good), valid_from, source_text)

    @property
    def good(self) -> E.Expr:
        return E.not_(self.bad)

    def resolved_against(self, system: TransitionSystem) -> "SafetyProperty":
        """Resolve define references so ``bad`` ranges over inputs/states."""
        return SafetyProperty(self.name, system.resolve_defines(self.bad),
                              self.valid_from, self.source_text)

    def conjoined_with(self, others: list["SafetyProperty"],
                       name: str | None = None) -> "SafetyProperty":
        """The conjunction property (bad = any component bad).

        Used by Houdini-style joint induction: proving the conjunction
        inductively proves every conjunct.
        """
        bad = self.bad
        valid_from = self.valid_from
        for other in others:
            bad = E.or_(bad, other.bad)
            valid_from = max(valid_from, other.valid_from)
        return SafetyProperty(name or f"{self.name}+{len(others)}lemmas",
                              bad, valid_from)
