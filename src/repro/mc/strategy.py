"""Uniformly-invokable check strategies and their registry.

Every way the system can answer "does this property hold?" — plain BMC,
the budgeted BMC probe, k-induction, and k-induction with the simple-path
constraint — is wrapped as a :class:`Strategy`: a stateless, picklable
object with one ``run(system, prop, lemmas, **options)`` entry point
returning the usual :class:`~repro.mc.result.CheckResult`.  The registry
maps *spec strings* like ``"bmc"`` or ``"k_induction(simple_path=True)"``
to a strategy plus bound options, so schedulers, the CLI, and the result
cache all speak the same vocabulary.

A :class:`CheckTask` bundles one concrete invocation (system + property +
strategy spec + lemmas) into a picklable unit; :func:`run_check_task` is
the module-level entry point multiprocessing workers import and execute.
"""

from __future__ import annotations

import ast as _pyast
import inspect as _inspect
import re
from dataclasses import dataclass, field
from functools import lru_cache as _lru_cache
from typing import Mapping, Protocol, runtime_checkable

from repro.errors import ReproError
from repro.ir import expr as E
from repro.ir.system import TransitionSystem
from repro.mc.bmc import bmc, bmc_probe
from repro.mc.kinduction import KInductionOptions, k_induction
from repro.mc.property import SafetyProperty
from repro.mc.result import CheckResult, ProofStats, Status
from repro.obs import tracing as _tracing


class StrategyError(ReproError):
    """Unknown strategy name or malformed strategy spec/options."""


Lemmas = list[tuple[E.Expr, int]]


@runtime_checkable
class Strategy(Protocol):
    """One way of checking a safety property.

    ``can_prove``/``can_refute`` describe which *conclusive* verdicts the
    strategy can produce; portfolio scheduling uses them to assemble
    complementary race sets (a prover plus a refuter covers both
    outcomes of an undecided property).
    """

    name: str
    can_prove: bool
    can_refute: bool

    def run(self, system: TransitionSystem, prop: SafetyProperty,
            lemmas: Lemmas | None = None, **options) -> CheckResult:
        ...


@dataclass(frozen=True)
class BmcStrategy:
    """Bounded counterexample search: refutes, never proves."""

    name: str = "bmc"
    can_prove: bool = False
    can_refute: bool = True

    def run(self, system: TransitionSystem, prop: SafetyProperty,
            lemmas: Lemmas | None = None, *, bound: int = 20,
            conflict_budget: int | None = None) -> CheckResult:
        return bmc(system, prop, bound, lemmas=lemmas,
                   conflict_budget=conflict_budget)


@dataclass(frozen=True)
class BmcProbeStrategy:
    """Single-shot budgeted bug probe (cheap triage, never a proof)."""

    name: str = "bmc_probe"
    can_prove: bool = False
    can_refute: bool = True

    def run(self, system: TransitionSystem, prop: SafetyProperty,
            lemmas: Lemmas | None = None, *, bound: int = 20,
            conflict_budget: int = 4000) -> CheckResult:
        return bmc_probe(system, prop, bound, lemmas=lemmas,
                         conflict_budget=conflict_budget)


@dataclass(frozen=True)
class KInductionStrategy:
    """k-induction: proves, and refutes via its base case."""

    name: str = "k_induction"
    can_prove: bool = True
    can_refute: bool = True

    def run(self, system: TransitionSystem, prop: SafetyProperty,
            lemmas: Lemmas | None = None, *, max_k: int = 10,
            simple_path: bool = False,
            keep_last_step_cex: bool = True) -> CheckResult:
        options = KInductionOptions(max_k=max_k, simple_path=simple_path,
                                    keep_last_step_cex=keep_last_step_cex)
        return k_induction(system, prop, options, lemmas=lemmas)


@dataclass(frozen=True)
class PdrStrategy:
    """IC3/PDR: proves with an invariant certificate, refutes with a
    real trace.  Depth is measured in *frames*, not unrolling steps, so
    the k-induction family's ``max_k`` deliberately does not apply —
    bound it with ``max_frames`` in the spec instead
    (``"pdr(max_frames=12)"``).

    The ``seed_*`` options pre-load frame 1 with candidate invariants
    (see :mod:`repro.mc.pdr.seed`); ``pdr_seeded`` is the registered
    variant with static GenAI synthesis seeding on by default."""

    name: str = "pdr"
    can_prove: bool = True
    can_refute: bool = True

    @staticmethod
    def cacheable(options: Mapping) -> bool:
        """Store-seeded runs are not cacheable: their outcome depends
        on the proof store's *contents*, which the query key cannot
        fingerprint — a cached early UNKNOWN would otherwise pin the
        property forever and defeat cross-run seed mining."""
        return options.get("seed_store_dir") is None

    def run(self, system: TransitionSystem, prop: SafetyProperty,
            lemmas: Lemmas | None = None, *, max_frames: int = 25,
            conflict_budget: int | None = 50_000,
            propagation_budget: int | None = 5_000_000,
            gen_budget: int | None = 2000,
            max_obligations: int = 20_000,
            seeds: tuple = (),
            seed_static: bool = False,
            seed_store_dir: str | None = None,
            seed_limit: int = 16,
            lift_cubes: bool = True) -> CheckResult:
        from repro.mc.pdr import PdrOptions, pdr
        options = PdrOptions(
            max_frames=max_frames, conflict_budget=conflict_budget,
            propagation_budget=propagation_budget,
            gen_budget=gen_budget, max_obligations=max_obligations,
            seeds=tuple(seeds), seed_static=seed_static,
            seed_store_dir=seed_store_dir, seed_limit=seed_limit,
            lift_cubes=lift_cubes)
        return pdr(system, prop, options, lemmas=lemmas)


@dataclass(frozen=True)
class ExternalBmcStrategy:
    """Bounded counterexample search on an installed external SAT binary.

    The BMC loop runs unchanged over a subprocess-backed frame solver
    (see :mod:`repro.sat.external`): each depth's query is piped through
    the DIMACS bridge to an auto-detected binary (``kissat``,
    ``minisat``, ...; override with ``binary=`` or ``REPRO_SAT_BINARY``).
    SAT answers are validated against the sent clauses before a trace is
    extracted, so a broken binary fails loudly.  With no binary
    installed the verdict is a clean UNKNOWN, which every racing layer
    already treats as "keep going" — registering the strategy is
    therefore always safe, and it stays out of the default portfolio.
    """

    name: str = "external"
    can_prove: bool = False
    can_refute: bool = True

    @staticmethod
    def cacheable(options: Mapping) -> bool:
        """Never cacheable: the verdict depends on which (if any)
        binary is installed, which the query key cannot fingerprint —
        a cached UNKNOWN from a binary-less machine would otherwise pin
        the property on machines that do have one."""
        return False

    def run(self, system: TransitionSystem, prop: SafetyProperty,
            lemmas: Lemmas | None = None, *, bound: int = 20,
            binary: str | None = None,
            timeout_s: float | None = None) -> CheckResult:
        from repro.aig.cnf import CnfBuilder
        from repro.mc.frame import FrameSolver
        from repro.sat.external import SubprocessSolver, find_external_solver
        spec = find_external_solver(binary)
        if spec is None:
            wanted = binary or "auto-detect"
            return CheckResult(
                prop.name, Status.UNKNOWN, k=0, stats=ProofStats(),
                detail=f"no external SAT binary available ({wanted})")
        frame = FrameSolver(system)
        ext = SubprocessSolver(spec, timeout_s=timeout_s)
        frame.solver = ext
        frame.cnf = CnfBuilder(frame.blaster.aig, ext)
        result = bmc(system, prop, bound, lemmas=lemmas, frame=frame)
        result.detail = (f"[{spec.name or spec.path}] "
                         f"{result.detail}" if result.detail
                         else f"via {spec.name or spec.path}")
        return result


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

# name -> (strategy, default option overrides baked into that name)
_REGISTRY: dict[str, tuple[Strategy, dict]] = {}


def register_strategy(strategy: Strategy,
                      name: str | None = None,
                      defaults: Mapping | None = None,
                      replace: bool = False) -> None:
    """Register ``strategy`` under ``name`` (default: its own name)."""
    key = name or strategy.name
    if key in _REGISTRY and not replace:
        raise StrategyError(f"strategy {key!r} already registered")
    _REGISTRY[key] = (strategy, dict(defaults or {}))


def get_strategy(name: str) -> Strategy:
    """The registered strategy object for a bare name (no option spec)."""
    try:
        return _REGISTRY[name][0]
    except KeyError:
        raise StrategyError(
            f"unknown strategy {name!r}; available: {strategy_names()}")


def strategy_names() -> list[str]:
    """All registered strategy names, stable order."""
    return list(_REGISTRY)


_SPEC_RE = re.compile(r"^\s*([A-Za-z_][A-Za-z0-9_]*)\s*(?:\((.*)\))?\s*$")


def resolve_strategy(spec: str) -> tuple[Strategy, dict]:
    """Parse ``"name"`` or ``"name(key=value, ...)"`` into (strategy, options).

    Option values are Python literals (``max_k=3``, ``simple_path=True``).
    Options written in the spec override the name's registered defaults.
    """
    m = _SPEC_RE.match(spec)
    if m is None:
        raise StrategyError(f"malformed strategy spec {spec!r}")
    name, arg_text = m.group(1), m.group(2)
    if name not in _REGISTRY:
        raise StrategyError(
            f"unknown strategy {name!r}; available: {strategy_names()}")
    strategy, defaults = _REGISTRY[name]
    options = dict(defaults)
    if arg_text and arg_text.strip():
        try:
            call = _pyast.parse(f"_({arg_text})", mode="eval").body
            if not isinstance(call, _pyast.Call) or call.args:
                raise ValueError("options must be key=value pairs")
            for kw in call.keywords:
                if kw.arg is None:
                    raise ValueError("**kwargs not allowed")
                options[kw.arg] = _pyast.literal_eval(kw.value)
        except (SyntaxError, ValueError) as exc:
            raise StrategyError(
                f"bad options in strategy spec {spec!r}: {exc}")
    return strategy, options


register_strategy(BmcStrategy())
register_strategy(BmcProbeStrategy())
register_strategy(KInductionStrategy())
# The simple-path variant is its own portfolio entry: complete for finite
# systems, quadratically more clauses — worth racing, not defaulting.
register_strategy(KInductionStrategy(), name="k_induction_sp",
                  defaults={"simple_path": True})
register_strategy(PdrStrategy())
# Seeded PDR pre-loads frames with GenAI-synthesized candidate lemmas
# (and store-mined invariants when seed_store_dir points at a campaign
# cache): its own registry entry so adaptive selection can learn when
# seeding pays for a design family.
register_strategy(PdrStrategy(), name="pdr_seeded",
                  defaults={"seed_static": True})
# The external-binary BMC racer: opt-in (never in the default
# portfolio), degrades to UNKNOWN when no binary is installed, so any
# layer may include it in a race unconditionally.
register_strategy(ExternalBmcStrategy())


# ---------------------------------------------------------------------------
# Picklable check tasks (the scheduler/worker currency)
# ---------------------------------------------------------------------------

@dataclass
class CheckTask:
    """One concrete check invocation, shippable to a worker process.

    ``key`` is scheduler-private correlation data (e.g. ``(group, slot)``);
    it rides along untouched.
    """

    key: tuple
    system: TransitionSystem
    prop: SafetyProperty
    strategy: str                       # spec string, e.g. "bmc(bound=12)"
    options: dict = field(default_factory=dict)   # overrides on the spec
    lemmas: Lemmas = field(default_factory=list)
    #: Trace pointer of the dispatching span, so pool workers parent
    #: their "check" spans under it (None when tracing is off).
    trace: _tracing.TraceContext | None = None


@_lru_cache(maxsize=None)
def _signature_defaults(strategy: Strategy) -> tuple[tuple[str, object], ...]:
    sig = _inspect.signature(strategy.run)
    return tuple((name, p.default) for name, p in sig.parameters.items()
                 if p.kind is p.KEYWORD_ONLY)


def strategy_option_names(strategy: Strategy) -> frozenset[str]:
    """The keyword options ``strategy.run`` accepts.

    Depth mapping (:func:`~repro.mc.portfolio.depth_options`) uses this
    to apply caller limits only where they exist — PDR, for example,
    has no ``max_k``.
    """
    return frozenset(name for name, _default
                     in _signature_defaults(strategy))


def canonical_options(strategy: Strategy, options: Mapping) -> dict:
    """Options as the strategy will actually run them.

    Folds the ``run()`` signature's keyword-only defaults under the
    caller's overrides, so ``"bmc"`` and ``"bmc(bound=20)"`` produce the
    same canonical dict — the invariant cache keying relies on: every
    layer keys the query by what gets executed, not by how much of it
    the caller spelled out.
    """
    full = dict(_signature_defaults(strategy))
    full.update(options)
    return full


def run_check_task(task: CheckTask) -> CheckResult:
    """Execute one task (in-process or inside a pool worker)."""
    import time as _time

    from repro.mc.cache import emit_check_events
    from repro.obs import events as _events

    strategy, options = resolve_strategy(task.strategy)
    options.update(task.options)
    parent = None
    if task.trace is not None and _tracing.adopt(task.trace):
        parent = task.trace.span_id
    with _tracing.span("check", parent_id=parent, strategy=strategy.name,
                       property=task.prop.name) as sp:
        _events.emit("check_start", design=task.system.name,
                     property=task.prop.name, strategy=strategy.name)
        started = _time.perf_counter()
        result = strategy.run(task.system, task.prop, lemmas=task.lemmas,
                              **options)
        wall = _time.perf_counter() - started
        if sp is not None:
            sp.attrs["status"] = result.status.value
        emit_check_events(task.system.name, task.prop.name, strategy.name,
                          result, wall, "solver")
    return result
