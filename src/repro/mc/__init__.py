"""Model checking: BMC, k-induction, and IC3/PDR over the IR, plus the
portfolio verification service (strategy registry, parallel scheduler,
result cache) that every higher layer dispatches through."""

from repro.mc.property import SafetyProperty
from repro.mc.result import CheckResult, ProofStats, Status
from repro.mc.bmc import bmc
from repro.mc.kinduction import KInductionOptions, k_induction
from repro.mc.pdr import PdrOptions, pdr
from repro.mc.cache import (CacheBacking, CacheStats, ResultCache,
                            run_cached, strategy_cacheable)
from repro.mc.certcheck import (CertificateReport, ObligationFailure,
                                check_certificate)
from repro.mc.strategy import (CheckTask, Strategy, StrategyError,
                               get_strategy, register_strategy,
                               resolve_strategy, run_check_task,
                               strategy_names, strategy_option_names)
from repro.mc.portfolio import (DEFAULT_PORTFOLIO, PortfolioOutcome,
                                PortfolioScheduler, VerifyTask)
from repro.mc.engine import EngineConfig, ProofEngine

__all__ = [
    "CacheBacking",
    "CacheStats",
    "CertificateReport",
    "CheckResult",
    "CheckTask",
    "ObligationFailure",
    "DEFAULT_PORTFOLIO",
    "EngineConfig",
    "KInductionOptions",
    "PdrOptions",
    "PortfolioOutcome",
    "PortfolioScheduler",
    "ProofEngine",
    "ProofStats",
    "ResultCache",
    "SafetyProperty",
    "Status",
    "Strategy",
    "StrategyError",
    "VerifyTask",
    "bmc",
    "check_certificate",
    "get_strategy",
    "k_induction",
    "pdr",
    "register_strategy",
    "resolve_strategy",
    "run_cached",
    "run_check_task",
    "strategy_cacheable",
    "strategy_names",
    "strategy_option_names",
]
