"""Model checking: bounded model checking and k-induction over the IR."""

from repro.mc.property import SafetyProperty
from repro.mc.result import CheckResult, ProofStats, Status
from repro.mc.bmc import bmc
from repro.mc.kinduction import KInductionOptions, k_induction
from repro.mc.engine import ProofEngine

__all__ = [
    "CheckResult",
    "KInductionOptions",
    "ProofEngine",
    "ProofStats",
    "SafetyProperty",
    "Status",
    "bmc",
    "k_induction",
]
