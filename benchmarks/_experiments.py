"""Shared experiment drivers for the benchmark suite.

Each ``run_*`` function regenerates one of the paper's artifacts (figure,
listing, or Results-section claim) and returns a
:class:`~repro.report.tables.Table` whose rows are the reproduction's
measured counterpart.  The ``bench_*`` pytest files time these drivers;
``python benchmarks/run_experiments.py`` renders all tables to markdown
for EXPERIMENTS.md.
"""

from __future__ import annotations

import time

from repro.designs import get_design
from repro.flow import VerificationSession
from repro.genai.personas import PAPER_MODELS
from repro.hdl import elaborate
from repro.mc import ProofEngine, Status
from repro.mc.engine import EngineConfig
from repro.report import Table
from repro.sva import MonitorContext

SEED = 1


# ---------------------------------------------------------------------------
# E1 — Listings 1-3 + Fig. 3: the synchronized-counters case study
# ---------------------------------------------------------------------------

def run_e1() -> Table:
    table = Table(["step", "status", "k", "proof time (s)",
                   "SAT conflicts"],
                  title="E1: sync_counters equal_count "
                        "(paper Listings 1-3, Figs. 2-3)")
    session = VerificationSession(get_design("sync_counters"),
                                  model="gpt-4o", seed=SEED)
    baseline = session.prove_direct("equal_count")
    table.add_row("plain k-induction", baseline.status.value, baseline.k,
                  baseline.stats.wall_seconds, baseline.stats.conflicts)
    assert baseline.status is Status.UNKNOWN
    repair = session.repair("equal_count")
    assert repair.converged and repair.final is not None
    table.add_row("repair flow (LLM helper)", repair.final.status.value,
                  repair.final.k, repair.final.stats.wall_seconds,
                  repair.final.stats.conflicts)
    helper_text = "; ".join(
        " ".join(h.source_text.split()) for h in repair.helpers)
    table.add_row("helper used", helper_text[:46], "-", "-", "-")
    return table


# ---------------------------------------------------------------------------
# E2 — Fig. 1 lemma-generation flow across the suite
# ---------------------------------------------------------------------------

E2_CASES = [
    ("sync_counters", ["equal_count"]),
    ("fifo_ctrl", ["occupancy_bound", "empty_means_zero"]),
    ("lfsr16", ["never_zero"]),
    ("shift_pipe", ["stage_consistency"]),
    ("updown_counter", ["upper_bound"]),
]


def run_e2(model: str = "gpt-4o") -> Table:
    table = Table(["design", "emitted", "proven lemmas", "target",
                   "without", "with", "effect"],
                  title=f"E2: lemma-generation flow (Fig. 1), {model}")
    for design_name, targets in E2_CASES:
        session = VerificationSession(get_design(design_name),
                                      model=model, seed=SEED)
        result = session.lemma_flow(targets=targets)
        for comparison in result.targets:
            if comparison.enabled_proof:
                effect = "enabled proof"
            elif comparison.speedup > 1.05:
                effect = f"x{comparison.speedup:.1f} faster"
            else:
                effect = "-"
            table.add_row(design_name, result.stats.assertions_emitted,
                          len(result.lemmas), comparison.name,
                          comparison.without.status.value,
                          comparison.with_lemmas.status.value, effect)
    return table


# ---------------------------------------------------------------------------
# E3 — Fig. 2 induction-repair flow across the induction-failing suite
# ---------------------------------------------------------------------------

E3_CASES = [
    ("sync_counters", "equal_count"),
    ("fifo_ctrl", "occupancy_bound"),
    ("fifo_ctrl", "empty_means_zero"),
    ("rr_arbiter", "grant_onehot0"),
    ("traffic_onehot", "mutual_exclusion"),
    ("ecc_pipeline", "no_error_clean"),
]


def run_e3(model: str = "gpt-4o") -> Table:
    table = Table(["design.property", "status", "iters", "helpers",
                   "final k", "llm (s)", "proof (s)"],
                  title=f"E3: induction-repair flow (Fig. 2), {model}")
    for design_name, prop_name in E3_CASES:
        session = VerificationSession(get_design(design_name),
                                      model=model, seed=SEED)
        result = session.repair(prop_name)
        table.add_row(f"{design_name}.{prop_name}", result.status.value,
                      len(result.iterations), len(result.helpers),
                      result.final.k if result.final else "-",
                      result.stats.llm_latency_s,
                      result.stats.proof_wall_s)
    # The seeded-bug control: the flow must report the violation.
    session = VerificationSession(get_design("sync_counters_bug"),
                                  model=model, seed=SEED)
    result = session.repair("counters_equal")
    table.add_row("sync_counters_bug.counters_equal", result.status.value,
                  len(result.iterations), len(result.helpers), "-",
                  result.stats.llm_latency_s, result.stats.proof_wall_s)
    return table


# ---------------------------------------------------------------------------
# E4 — Section V model comparison
# ---------------------------------------------------------------------------

E4_CASES = [
    ("sync_counters", "equal_count"),
    ("fifo_ctrl", "occupancy_bound"),
    ("traffic_onehot", "mutual_exclusion"),
]
E4_SEEDS = (0, 1, 2)


def run_e4() -> Table:
    table = Table(["model", "emitted", "parse ok", "resolve ok",
                   "proven", "hallucination rate", "converged",
                   "avg llm (s)"],
                  title="E4: assertion quality by model (paper Sec. V)")
    for model in PAPER_MODELS:
        emitted = parsed = resolved = proven = converged = runs = 0
        latency = 0.0
        for design_name, prop_name in E4_CASES:
            for seed in E4_SEEDS:
                session = VerificationSession(get_design(design_name),
                                              model=model, seed=seed)
                result = session.repair(prop_name)
                runs += 1
                emitted += result.stats.assertions_emitted
                parsed += result.stats.assertions_parsed
                resolved += result.stats.assertions_resolved
                proven += result.stats.assertions_proven
                converged += int(result.converged)
                latency += result.stats.llm_latency_s
        halluc = 1.0 - (resolved / emitted) if emitted else 0.0
        table.add_row(model, emitted, parsed, resolved, proven,
                      f"{halluc:.2f}", f"{converged}/{runs}",
                      latency / max(runs, 1))
    return table


# ---------------------------------------------------------------------------
# E5 — "faster proof for complex properties": width sweep + ECC depth
# ---------------------------------------------------------------------------

E5_WIDTHS = (8, 16, 32, 48)


def run_e5() -> Table:
    table = Table(["case", "without helper", "t (s)", "with helper",
                   "t (s)", "effect"],
                  title="E5: proof effort, helper vs none (paper Sec. V)")
    design = get_design("sync_counters")
    for width in E5_WIDTHS:
        system = elaborate(design.rtl, params={"W": width},
                           name=f"sync{width}")
        ctx = MonitorContext(system)
        target = ctx.add("&count1 |-> &count2", name="equal_count")
        helper = ctx.add("count1 == count2", name="helper")
        engine = ProofEngine(ctx.system, EngineConfig(max_k=2))
        t0 = time.perf_counter()
        without = engine.prove(target, max_k=2)
        t_without = time.perf_counter() - t0
        t0 = time.perf_counter()
        helper_result = engine.prove(helper, max_k=1)
        assert helper_result.status is Status.PROVEN
        engine.add_lemma("helper", helper.good, helper.valid_from)
        with_helper = engine.prove(target, max_k=2)
        t_with = time.perf_counter() - t0
        effect = "enabled proof" if (
            without.status is not Status.PROVEN
            and with_helper.status is Status.PROVEN) else "-"
        table.add_row(f"sync_counters W={width}", without.status.value,
                      t_without, with_helper.status.value, t_with, effect)
    # ECC: the helper closes the decode-correctness proof at k=1 where
    # the unaided induction must deepen to k=2.  We report both wall
    # times honestly: on this substrate the k=2 proof is affordable, so
    # the helper's measured benefit is convergence depth (and hence
    # scalability), which is the paper's qualitative claim.
    ecc = get_design("ecc_pipeline")
    ctx = MonitorContext(ecc.system())
    target = ctx.add(ecc.property_spec("single_error_corrected").sva,
                     name="single_error_corrected")
    engine = ProofEngine(ctx.system, EngineConfig(max_k=2))
    t0 = time.perf_counter()
    without = engine.prove(target, max_k=2)
    t_without = time.perf_counter() - t0
    name, sva = ecc.golden_helpers[0]
    helper = ctx.add(sva, name=name)
    t0 = time.perf_counter()
    helper_result = engine.prove(helper, max_k=1)
    assert helper_result.status is Status.PROVEN
    engine.add_lemma(name, helper.good, helper.valid_from)
    with_helper = engine.prove(target, max_k=1)
    t_with = time.perf_counter() - t0
    table.add_row("ecc single_error_corrected",
                  f"{without.status.value} (k={without.k})", t_without,
                  f"{with_helper.status.value} (k={with_helper.k})",
                  t_with, "closes at k=1 (vs k=2)")
    return table


# ---------------------------------------------------------------------------
# E6 — k-induction background behaviour (paper Sec. II-A)
# ---------------------------------------------------------------------------

def run_e6() -> Table:
    table = Table(["case", "max_k", "status", "k", "t (s)"],
                  title="E6: induction depth and simple-path ablation")
    shift = get_design("shift_pipe")
    for max_k in (1, 2, 3):
        session = VerificationSession(shift)
        result = session.prove_direct("latency3", max_k=max_k)
        table.add_row("shift_pipe.latency3", max_k, result.status.value,
                      result.k, result.stats.wall_seconds)
    gray = get_design("gray_counter")
    session = VerificationSession(gray)
    result = session.prove_direct("unit_distance", max_k=2)
    table.add_row("gray_counter.unit_distance", 2, result.status.value,
                  result.k, result.stats.wall_seconds)
    # BMC alone only covers its bound (the paper's Sec. II-A point).
    sync = VerificationSession(get_design("sync_counters"))
    bounded = sync.bmc("counters_equal", bound=10)
    table.add_row("sync_counters BMC bound=10", "-", bounded.status.value,
                  bounded.k, bounded.stats.wall_seconds)
    return table


# ---------------------------------------------------------------------------
# A1 — Houdini ablation: screening and fixpoint vs trusting the LLM
# ---------------------------------------------------------------------------

def run_a1() -> Table:
    from repro.flow.houdini import houdini_prove
    table = Table(["candidate set", "input", "proven", "dropped",
                   "rounds", "t (s)"],
                  title="A1: Houdini fixpoint on mixed candidate sets")
    design = get_design("fifo_ctrl")
    sets = {
        "golden only": ["count == wptr - rptr"],
        "golden + true-but-noninductive": ["count == wptr - rptr",
                                           "count <= 5'd16"],
        "golden + false junk": ["count == wptr - rptr",
                                "count < 5'd2", "wptr == rptr"],
        "junk only": ["count < 5'd2", "wptr != rptr"],
    }
    for label, bodies in sets.items():
        ctx = MonitorContext(design.system())
        candidates = [ctx.add(b, name=f"c{i}")
                      for i, b in enumerate(bodies)]
        t0 = time.perf_counter()
        result = houdini_prove(ctx.system, candidates, max_k=2)
        table.add_row(label, len(bodies), len(result.proven),
                      len(result.dropped), result.rounds,
                      time.perf_counter() - t0)
    return table


# ---------------------------------------------------------------------------
# A2 — engine micro-measurements under the proof-time numbers
# ---------------------------------------------------------------------------

def run_a2() -> Table:
    from repro.aig.bitblast import BitBlaster
    from repro.ir import expr as E
    from repro.sat.solver import Solver
    table = Table(["micro-benchmark", "size", "t (s)"],
                  title="A2: engine micro-measurements")
    for width in (16, 32, 64):
        t0 = time.perf_counter()
        bb = BitBlaster()
        bb.blast(E.add(E.var("a", width), E.var("b", width)))
        table.add_row(f"bit-blast {width}-bit adder", bb.aig.num_ands,
                      time.perf_counter() - t0)
    t0 = time.perf_counter()
    solver = Solver()
    v = {}
    for p in range(7):
        for h in range(6):
            v[p, h] = solver.add_var()
    for p in range(7):
        solver.add_clause([v[p, h] for h in range(6)])
    for h in range(6):
        for p1 in range(7):
            for p2 in range(p1 + 1, 7):
                solver.add_clause([-v[p1, h], -v[p2, h]])
    assert solver.solve() is False
    table.add_row("CDCL pigeonhole PHP(7,6) UNSAT",
                  solver.stats.conflicts, time.perf_counter() - t0)
    session = VerificationSession(get_design("sync_counters"))
    t0 = time.perf_counter()
    session.bmc("counters_equal", bound=15)
    table.add_row("BMC 15 frames, 32-bit counters", 15,
                  time.perf_counter() - t0)
    return table


# ---------------------------------------------------------------------------
# E7 — portfolio verification service: parallel scheduler + result cache
# ---------------------------------------------------------------------------

def run_e7(jobs: int = 4) -> Table:
    """Batch-verify the counter_bank stress design three ways.

    Sequential baseline, parallel portfolio fan-out (``jobs`` worker
    processes), and a repeat of the parallel batch against the warm
    result cache.  Rows carry wall time, verdict mix, and cache traffic.
    """
    import os

    from repro.flow.session import BatchVerifyResult

    design = get_design("counter_bank")
    table = Table(["mode", "wall (s)", "proven", "violated", "other",
                   "cache hits", "speedup vs sequential"],
                  title=f"E7: portfolio verification service on "
                        f"{design.name} ({os.cpu_count()} cpus)")

    def add_row(label: str, batch: BatchVerifyResult, hits: int,
                baseline: float | None) -> None:
        proven = sum(1 for o in batch.outcomes
                     if o.status is Status.PROVEN)
        violated = sum(1 for o in batch.outcomes
                       if o.status is Status.VIOLATED)
        other = len(batch.outcomes) - proven - violated
        speedup = "-" if baseline is None else \
            f"x{baseline / max(batch.wall_seconds, 1e-9):.2f}"
        table.add_row(label, batch.wall_seconds, proven, violated, other,
                      hits, speedup)

    sequential = VerificationSession(design).verify_all(jobs=1)
    add_row("sequential (jobs=1)", sequential,
            sequential.cache_stats.hits, None)

    parallel_session = VerificationSession(design)
    parallel = parallel_session.verify_all(jobs=jobs)
    add_row(f"parallel (jobs={jobs})", parallel,
            parallel.cache_stats.hits, sequential.wall_seconds)

    cached = parallel_session.verify_all(jobs=jobs)
    add_row("parallel again (warm cache)", cached,
            cached.cache_stats.hits, sequential.wall_seconds)
    return table


# ---------------------------------------------------------------------------
# E8 — the campaign subsystem (persistent store + adaptive selection)
# ---------------------------------------------------------------------------

E8_DESIGNS = ["updown_counter", "gray_counter", "lfsr16", "alu_accum",
              "sync_counters_bug", "shift_pipe"]


def run_e8(jobs: int = 1) -> Table:
    """Cross-design campaign: cold store, warm store, and no-adaptive.

    One temp proof store serves three campaigns over the same designs:
    a cold run that fills the store, a warm adaptive rerun (every query
    should come back from the disk tier, and mined history should prune
    the strategy races), and a warm full-portfolio rerun as the job-count
    baseline adaptive selection is measured against.
    """
    import tempfile

    from repro.campaign import CampaignReport
    from repro.flow import run_campaign

    table = Table(["mode", "wall (s)", "proven", "violated", "unknown",
                   "disk hits", "jobs dispatched", "portfolio jobs"],
                  title=f"E8: verification campaign over "
                        f"{len(E8_DESIGNS)} designs")

    def add_row(label: str, report: CampaignReport) -> None:
        table.add_row(label, report.wall_seconds, report.proved,
                      report.falsified, report.unknown,
                      report.cache.disk_hits, report.dispatched_jobs,
                      report.full_portfolio_jobs)

    with tempfile.TemporaryDirectory() as cache_dir:
        cold = run_campaign(designs=E8_DESIGNS, cache_dir=cache_dir,
                            jobs=jobs, max_k=3)
        add_row("cold store (adaptive)", cold)
        warm = run_campaign(designs=E8_DESIGNS, cache_dir=cache_dir,
                            jobs=jobs, max_k=3)
        add_row("warm store (adaptive)", warm)
        full = run_campaign(designs=E8_DESIGNS, cache_dir=cache_dir,
                            jobs=jobs, max_k=3, adaptive=False)
        add_row("warm store (full portfolio)", full)
    return table


# ---------------------------------------------------------------------------
# E9 — IC3/PDR vs k-induction, seeded vs unseeded
# ---------------------------------------------------------------------------

E9_CASES = [
    ("traffic_onehot", "mutual_exclusion"),
    ("rr_arbiter", "grant_onehot0"),
    ("lfsr16", "never_zero"),
    ("sync_counters", "equal_count"),
    ("fifo_ctrl", "count_matches_pointers"),
]

#: Bounded engine knobs so the losing configurations give up in about a
#: second instead of dominating the benchmark's wall time.
E9_PDR_OPTS = {"max_frames": 18, "conflict_budget": 3000,
               "propagation_budget": 500_000, "gen_budget": 500,
               "max_obligations": 2000}


def run_e9() -> Table:
    """Engine comparison on needs-helper and invariant-shaped targets.

    For each case, three configurations run over one compiled system:
    k-induction at the property's default depth, plain PDR, and
    GenAI-seeded PDR.  Conflicts and propagations are the headline
    columns — the machine-independent effort measures the campaign
    report now carries per row — because wall time on this substrate
    mixes solver effort with Python overhead.
    """
    from repro.mc.engine import ProofEngine

    table = Table(["design.property", "strategy", "status", "k",
                   "t (s)", "conflicts", "propagations"],
                  title="E9: IC3/PDR vs k-induction, seeded vs unseeded")
    for design_name, prop_name in E9_CASES:
        design = get_design(design_name)
        ctx = MonitorContext(design.system())
        spec = design.property_spec(prop_name)
        prop = ctx.add(spec.sva, name=spec.name)
        engine = ProofEngine(ctx.system)
        runs = [
            ("k_induction", {"max_k": spec.max_k}),
            ("pdr", dict(E9_PDR_OPTS)),
            ("pdr_seeded", dict(E9_PDR_OPTS)),
        ]
        for strategy, options in runs:
            t0 = time.perf_counter()
            result = engine.check(prop, strategy, **options)
            elapsed = time.perf_counter() - t0
            table.add_row(f"{design_name}.{prop_name}", strategy,
                          result.status.value, result.k, elapsed,
                          result.stats.conflicts,
                          result.stats.propagations)
    return table


# ---------------------------------------------------------------------------
# E10 — solver hot-path micro-benchmark (the perf-regression gate)
# ---------------------------------------------------------------------------

#: Width sweep for the E1-shaped workload: the solver-bound share of a
#: k-induction attempt grows with datapath width, so narrow widths
#: measure encoding overhead and wide widths measure BCP throughput.
E10_WIDTHS = (8, 16, 32)

#: E9-shaped PDR workload: the unseeded-PDR cases with the E9 budgets.
E10_PDR_CASES = [
    ("traffic_onehot", "mutual_exclusion"),
    ("lfsr16", "never_zero"),
    ("sync_counters", "equal_count"),
]


def run_e10() -> Table:
    """Solver hot-path micro-benchmark over E1/E7/E9-shaped workloads.

    Reports propagations/sec and conflicts/sec against *in-solver* wall
    time (``ProofStats.solve_seconds`` — Python/encoding overhead
    excluded, so the figure tracks the CDCL inner loops and nothing
    else) plus end-to-end wall clock per workload.  The JSON dump of
    this table is the committed perf baseline
    (``benchmarks/baselines/bench_e10.json``) that
    ``scripts/check_bench_regression.py`` gates CI against.
    """
    table = Table(["workload", "status", "wall (s)", "solver (s)",
                   "conflicts", "propagations", "props/sec",
                   "conflicts/sec"],
                  title="E10: solver hot-path micro-benchmark")

    totals = {"wall": 0.0, "solver": 0.0, "conflicts": 0, "props": 0}

    def add_workload(label: str, runs) -> None:
        t0 = time.perf_counter()
        statuses, conflicts, props, solver_s = [], 0, 0, 0.0
        for result in runs():
            statuses.append(result.status.value)
            conflicts += result.stats.conflicts
            props += result.stats.propagations
            solver_s += result.stats.solve_seconds
        wall = time.perf_counter() - t0
        status = "/".join(sorted(set(statuses)))
        table.add_row(label, status, wall, solver_s, conflicts, props,
                      int(props / max(solver_s, 1e-9)),
                      int(conflicts / max(solver_s, 1e-9)))
        totals["wall"] += wall
        totals["solver"] += solver_s
        totals["conflicts"] += conflicts
        totals["props"] += props

    # E1-shaped: deep BMC on the lock-step counters across a width
    # sweep.  BMC at bound 32 on a W-bit datapath is pure BCP weight
    # (every query is UNSAT, so the solver grinds rather than guessing
    # lucky models) and scales predictably with W.
    design = get_design("sync_counters")
    spec = design.property_spec("equal_count")
    for width in E10_WIDTHS:
        def bmc_runs(width=width):
            system = elaborate(design.rtl, params={"W": width},
                               name=f"sync{width}")
            ctx = MonitorContext(system)
            prop = ctx.add(spec.sva, name=spec.name)
            engine = ProofEngine(ctx.system)
            yield engine.check(prop, "bmc", bound=32)
        add_workload(f"e1_bmc_w{width}", bmc_runs)

    # E7-shaped: the bounded refutation / deep-induction mix a portfolio
    # batch dispatches, run in-process so only solver effort is timed.
    def e7_runs():
        for design_name, prop_name, strategy, options in [
                ("lfsr16", "never_zero", "bmc", {"bound": 24}),
                ("fifo_ctrl", "count_matches_pointers", "k_induction",
                 {"max_k": 10}),
                ("sync_counters", "equal_count", "bmc", {"bound": 20})]:
            d = get_design(design_name)
            ctx = MonitorContext(d.system())
            p = d.property_spec(prop_name)
            prop = ctx.add(p.sva, name=p.name)
            yield ProofEngine(ctx.system).check(prop, strategy, **options)
    add_workload("e7_portfolio_mix", e7_runs)

    # E9-shaped: unseeded PDR under the E9 budgets (assumption-heavy
    # incremental queries — the other hot-path profile).
    def e9_runs():
        for design_name, prop_name in E10_PDR_CASES:
            d = get_design(design_name)
            ctx = MonitorContext(d.system())
            p = d.property_spec(prop_name)
            prop = ctx.add(p.sva, name=p.name)
            yield ProofEngine(ctx.system).check(prop, "pdr",
                                                **E9_PDR_OPTS)
    add_workload("e9_pdr_unseeded", e9_runs)

    # The aggregate is the headline regression-gate figure: individual
    # workloads can be millisecond-scale and noisy, the total is not.
    table.add_row("TOTAL", "-", totals["wall"], totals["solver"],
                  totals["conflicts"], totals["props"],
                  int(totals["props"] / max(totals["solver"], 1e-9)),
                  int(totals["conflicts"] / max(totals["solver"], 1e-9)))

    # Observability overhead: the e7-shaped mix with solver metrics on
    # vs off, interleaved (shared thermal/JIT conditions) and best-of-3
    # per mode so scheduler noise does not masquerade as overhead.
    # These rows sit BELOW the TOTAL: the headline gate against the
    # committed baseline is untouched, while
    # scripts/check_bench_regression.py separately fails CI when the
    # on/off props/sec ratio drops under 0.95 (the <5% overhead
    # contract of docs/observability.md).
    # The "on" rows run with the full observability stack: solver
    # metrics AND the structured event journal writing JSONL to a
    # scratch directory, so the 0.95 gate covers event emission too.
    import shutil
    import tempfile

    from repro.obs import events as obs_events
    from repro.obs import metrics_enabled, set_metrics_enabled

    was_enabled = metrics_enabled()
    best: dict[bool, tuple] = {}
    events_scratch = tempfile.mkdtemp(prefix="repro-e10-events-")
    try:
        for _rep in range(3):
            for enabled in (True, False):
                set_metrics_enabled(enabled)
                if enabled:
                    obs_events.configure(events_scratch)
                else:
                    obs_events.shutdown()
                t0 = time.perf_counter()
                conflicts, props, solver_s = 0, 0, 0.0
                for result in e7_runs():
                    conflicts += result.stats.conflicts
                    props += result.stats.propagations
                    solver_s += result.stats.solve_seconds
                wall = time.perf_counter() - t0
                rate = props / max(solver_s, 1e-9)
                if enabled not in best or rate > best[enabled][-1]:
                    best[enabled] = (wall, solver_s, conflicts, props,
                                     rate)
    finally:
        set_metrics_enabled(was_enabled)
        obs_events.shutdown()
        shutil.rmtree(events_scratch, ignore_errors=True)
    for enabled, label in ((True, "obs_metrics_on"),
                           (False, "obs_metrics_off")):
        wall, solver_s, conflicts, props, rate = best[enabled]
        table.add_row(label, "-", wall, solver_s, conflicts, props,
                      int(rate),
                      int(conflicts / max(solver_s, 1e-9)))
    return table


# ---------------------------------------------------------------------------
# E11 — corpus campaign throughput: file import + cold vs warm store
# ---------------------------------------------------------------------------

E11_BMC_BOUND = 5     # keep the refuter shallow: throughput, not depth
E11_JOBS = 2


def run_e11() -> Table:
    """Designs/sec over the checked-in interchange corpus.

    Three phases: loading every ``corpus/`` file through the format
    readers, a cold campaign against an empty proof store, and a warm
    rerun against the store the cold pass filled (which should be
    answered almost entirely from cache).
    """
    import os
    import tempfile
    from pathlib import Path

    from repro.designs import load_corpus
    from repro.designs.registry import CORPUS_ENV
    from repro.flow import run_campaign

    corpus_dir = Path(__file__).resolve().parent.parent / "corpus"
    table = Table(["phase", "status", "wall (s)", "solver (s)",
                   "designs", "properties", "designs/sec"],
                  title="E11: corpus campaign throughput "
                        "(interchange import, cold vs warm store)")
    totals = {"wall": 0.0, "solver": 0.0, "designs": 0}

    t0 = time.perf_counter()
    designs = load_corpus(corpus_dir)
    load_wall = time.perf_counter() - t0
    n_designs = len(designs)
    n_props = sum(len(d.properties) for d in designs)
    table.add_row("load", "ok", load_wall, 0.0, n_designs, n_props,
                  n_designs / max(load_wall, 1e-9))
    totals["wall"] += load_wall
    totals["designs"] += n_designs

    saved = os.environ.get(CORPUS_ENV)
    os.environ[CORPUS_ENV] = str(corpus_dir)
    try:
        with tempfile.TemporaryDirectory() as cache_dir:
            for phase in ("campaign_cold", "campaign_warm"):
                t0 = time.perf_counter()
                report = run_campaign(
                    designs=[d.name for d in designs],
                    cache_dir=cache_dir, jobs=E11_JOBS,
                    bmc_bound=E11_BMC_BOUND)
                wall = time.perf_counter() - t0
                solver_s = report.phase_seconds.get("solve", 0.0)
                # A shallow BMC bound may legitimately miss a deep
                # expect=violated CEX; a *spurious* violation is a
                # correctness bug and taints the row status.
                spurious = sum(
                    1 for row in report.rows
                    if row.status == "violated"
                    and row.expect not in ("violated", "unknown"))
                status = "ok" if spurious == 0 \
                    else f"spurious={spurious}"
                if phase == "campaign_warm" and report.cache.hits == 0:
                    status = "cache_cold"   # warm rerun missed the store
                table.add_row(phase, status, wall, solver_s, n_designs,
                              len(report.rows),
                              n_designs / max(wall, 1e-9))
                totals["wall"] += wall
                totals["solver"] += solver_s
                totals["designs"] += n_designs
    finally:
        if saved is None:
            os.environ.pop(CORPUS_ENV, None)
        else:
            os.environ[CORPUS_ENV] = saved

    table.add_row("TOTAL", "-", totals["wall"], totals["solver"],
                  totals["designs"], 3 * n_props,
                  totals["designs"] / max(totals["wall"], 1e-9))
    return table


ALL_EXPERIMENTS = {
    "E1": run_e1,
    "E2": run_e2,
    "E3": run_e3,
    "E4": run_e4,
    "E5": run_e5,
    "E6": run_e6,
    "E7": run_e7,
    "E8": run_e8,
    "E9": run_e9,
    "E10": run_e10,
    "E11": run_e11,
    "A1": run_a1,
    "A2": run_a2,
}
