"""E9 — IC3/PDR vs k-induction, GenAI-seeded vs unseeded.

Runs the three engine configurations over the invariant-shaped targets
and checks the PR's headline claims:

* PDR proves needs-helper properties (one-hot pointer/state shapes)
  that k-induction cannot close at the property's default depth;
* GenAI seeding extends that reach to relational invariants
  (lock-step counter equality, FIFO occupancy), closing cases plain
  PDR gives up on within the same budgets — or closing them with
  strictly fewer solver conflicts;
* no configuration ever contradicts another's conclusive verdict.
"""

from _experiments import run_e9


def test_e9_pdr(benchmark):
    table = benchmark.pedantic(run_e9, rounds=1, iterations=1)
    print()
    print(table.to_text())
    rows = {}
    for case, strategy, status, _k, _t, conflicts, _props in table.rows:
        rows[(case, strategy)] = (status, int(conflicts))

    def status(case, strategy):
        return rows[(case, strategy)][0]

    def conflicts(case, strategy):
        return rows[(case, strategy)][1]

    # PDR closes the needs-helper one-hot cases k-induction cannot.
    for case in ("traffic_onehot.mutual_exclusion",
                 "rr_arbiter.grant_onehot0"):
        assert status(case, "k_induction") == "unknown"
        assert status(case, "pdr") == "proven"
        assert status(case, "pdr_seeded") == "proven"

    # Seeding closes the relational cases plain PDR gives up on — or,
    # when both close, does it with no more conflicts.  The lock-step
    # counters are also beyond k-induction at the default depth: the
    # acceptance case.
    assert status("sync_counters.equal_count", "k_induction") == \
        "unknown"
    for case in ("sync_counters.equal_count",
                 "fifo_ctrl.count_matches_pointers"):
        assert status(case, "pdr_seeded") == "proven"
        if status(case, "pdr") == "proven":
            assert conflicts(case, "pdr_seeded") <= \
                conflicts(case, "pdr")

    # Conclusive verdicts never contradict across configurations.
    for (case, _strategy), (verdict, _c) in rows.items():
        others = {rows[(case, s)][0]
                  for s in ("k_induction", "pdr", "pdr_seeded")}
        assert not ({"proven", "violated"} <= others), case
