"""E5 — proof effort with vs without helpers (Results section).

Sweeps the paper's counter pair across widths and measures the ECC
decode proof at its two convergence depths.  Shape check: for every
width the unaided induction fails while the helper-strengthened proof
closes; the ECC helper reduces the convergence depth to k=1.
"""

from _experiments import run_e5


def test_e5_speedup_sweep(benchmark):
    table = benchmark.pedantic(run_e5, rounds=1, iterations=1)
    print()
    print(table.to_text())
    for row in table.rows:
        case, without, _t1, with_, _t2, effect = row
        if case.startswith("sync_counters"):
            assert without == "unknown"
            assert with_ == "proven"
            assert effect == "enabled proof"
        else:
            assert "k=1" in with_
