"""A1 — Houdini-fixpoint ablation (the flows' soundness gate).

Quantifies what the Section VI hallucination warning costs to enforce:
mixed candidate sets are filtered down to their maximal inductive subset;
false junk is always dropped, mutually-supporting sets survive together.
"""

from _experiments import run_a1


def test_a1_houdini_ablation(benchmark):
    table = benchmark.pedantic(run_a1, rounds=1, iterations=1)
    print()
    print(table.to_text())
    rows = {row[0]: row for row in table.rows}
    assert rows["golden only"][2] == "1"
    assert rows["golden + true-but-noninductive"][2] == "2"  # co-inductive
    assert rows["golden + false junk"][2] == "1"
    assert rows["golden + false junk"][3] == "2"
    assert rows["junk only"][2] == "0"
