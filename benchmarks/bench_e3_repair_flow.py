"""E3 — the Fig. 2 induction-repair flow across the failing suite.

Regenerates the paper's central loop on every induction-failing property
(counters, FIFO, arbiter, FSM, ECC) plus the seeded-bug control.  Shape
check: every true property converges to ``proven`` and the bug design
reports ``violated`` (GenAI must not repair real bugs).
"""

from _experiments import run_e3


def test_e3_repair_flow_suite(benchmark):
    table = benchmark.pedantic(run_e3, rounds=1, iterations=1)
    print()
    print(table.to_text())
    for row in table.rows:
        name, status = row[0], row[1]
        if name.startswith("sync_counters_bug"):
            assert status == "violated"
        else:
            assert status == "proven", f"{name} did not converge"
