"""E6 — k-induction background behaviour (paper Sec. II-A).

Quantifies the textbook statements the paper builds on: BMC only covers
its bound; induction depth matters (a 3-stage pipeline property needs
k=3); monitor warm-up interacts with the base case.
"""

from _experiments import run_e6


def test_e6_kinduction_ablation(benchmark):
    table = benchmark.pedantic(run_e6, rounds=1, iterations=1)
    print()
    print(table.to_text())
    latency_rows = [r for r in table.rows
                    if r[0] == "shift_pipe.latency3"]
    by_k = {r[1]: r[2] for r in latency_rows}
    assert by_k["1"] == "unknown"
    assert by_k["2"] == "unknown"
    assert by_k["3"] == "proven"
    bmc_row = [r for r in table.rows if "BMC" in r[0]][0]
    assert bmc_row[2] == "bounded_ok"  # a bound is not a proof
