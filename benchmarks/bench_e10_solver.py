"""E10 — solver hot-path micro-benchmark (perf-regression gate).

Times the CDCL core against the three workload shapes the PR's solver
rewrite targets — deep BMC (pure BCP), a mixed bounded/induction
portfolio batch, and unseeded PDR (assumption-heavy incremental
queries) — and asserts the structural invariants the perf harness
relies on: verdicts are the expected ones, solver time is a subset of
wall time, and the propagation counters actually moved.

The numbers themselves are gated separately:
``scripts/check_bench_regression.py`` compares a fresh JSON dump of
this table against the committed baseline in
``benchmarks/baselines/bench_e10.json`` and fails on a >30%
propagations/sec regression.
"""

from _experiments import run_e10


def test_e10_solver(benchmark):
    table = benchmark.pedantic(run_e10, rounds=1, iterations=1)
    print()
    print(table.to_text())
    rows = {}
    for label, status, wall, solver_s, conflicts, props, pps, cps in \
            table.rows:
        rows[label] = (status, float(wall), float(solver_s),
                       int(conflicts), int(props), int(pps), int(cps))

    # Every workload shape ran, plus the aggregate row the regression
    # gate keys on and the paired instrumentation-overhead probes the
    # obs gate keys on.
    assert set(rows) == {"e1_bmc_w8", "e1_bmc_w16", "e1_bmc_w32",
                         "e7_portfolio_mix", "e9_pdr_unseeded", "TOTAL",
                         "obs_metrics_on", "obs_metrics_off"}

    # Verdict sanity: BMC holds at the bound everywhere, the portfolio
    # mix closes its induction target, PDR proves at least one case.
    for label in ("e1_bmc_w8", "e1_bmc_w16", "e1_bmc_w32"):
        assert rows[label][0] == "bounded_ok", label
    assert rows["e7_portfolio_mix"][0] == "bounded_ok/proven"
    assert "proven" in rows["e9_pdr_unseeded"][0]

    for label, (_s, wall, solver_s, _c, props, pps, _cps) in rows.items():
        if label == "TOTAL":
            continue
        # The solver must have done real work for the rates to mean
        # anything, and in-solver time can never exceed wall time.
        assert props > 0, label
        assert pps > 0, label
        assert solver_s <= wall + 1e-6, label

    # Width scaling: the BMC instance (and hence BCP work) grows with
    # the datapath width, so the propagation counts must too.
    assert rows["e1_bmc_w8"][4] < rows["e1_bmc_w16"][4] < \
        rows["e1_bmc_w32"][4]

    # The conflict-driven workloads exercise learning, not just BCP.
    assert rows["e7_portfolio_mix"][3] > 0
    assert rows["e9_pdr_unseeded"][3] > 0

    # The TOTAL row is the exact sum of the workload rows (the obs
    # overhead probes sit below the aggregate and stay out of it).
    assert rows["TOTAL"][4] == sum(
        r[4] for label, r in rows.items()
        if label not in ("TOTAL", "obs_metrics_on", "obs_metrics_off"))

    # The overhead probes re-ran the same portfolio mix: identical
    # deterministic work either way, so the propagation counts match
    # the timed e7 row exactly and the rates are sane.
    assert rows["obs_metrics_on"][4] == rows["obs_metrics_off"][4] == \
        rows["e7_portfolio_mix"][4]
    assert rows["obs_metrics_on"][5] > 0
    assert rows["obs_metrics_off"][5] > 0
