"""Benchmark-suite configuration.

Each experiment driver is executed once per benchmark (rounds=1): the
drivers run whole verification flows whose internal statistics — not
statistical timing repetition — are the quantity of interest, and several
take tens of seconds.
"""

import sys
from pathlib import Path

# Make `_experiments` importable regardless of invocation directory.
sys.path.insert(0, str(Path(__file__).parent))
