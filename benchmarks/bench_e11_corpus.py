"""E11 — corpus campaign throughput (interchange-format gate).

Times the full file-based pipeline the formats PR added: parsing every
checked-in ``corpus/`` AIGER/BTOR2 file into a Design, a cold campaign
over all of them, and a warm rerun against the proof store the cold
pass filled.  Structural assertions pin the semantics (no expectation
mismatches, warm pass answered from cache); the throughput numbers are
gated separately by ``scripts/check_bench_regression.py --experiment
E11`` against ``benchmarks/baselines/bench_e11.json``.
"""

from _experiments import run_e11


def test_e11_corpus(benchmark):
    table = benchmark.pedantic(run_e11, rounds=1, iterations=1)
    print()
    print(table.to_text())
    rows = {}
    for phase, status, wall, solver_s, designs, props, dps in table.rows:
        rows[phase] = (status, float(wall), float(solver_s),
                       int(designs), int(props), float(dps))

    assert set(rows) == {"load", "campaign_cold", "campaign_warm",
                         "TOTAL"}

    # The corpus floor the CI gate also enforces: >= 15 designs, and
    # every phase actually processed them.
    for phase in ("load", "campaign_cold", "campaign_warm"):
        assert rows[phase][3] >= 15, phase
        assert rows[phase][5] > 0, phase

    # Campaign semantics: no spurious violations in either pass (a
    # shallow BMC bound may miss deep CEXes, never invent them), and
    # the warm pass was answered from the proof store.
    assert rows["campaign_cold"][0] == "ok"
    assert rows["campaign_warm"][0] == "ok"

    # The warm rerun must beat the cold pass — that's the proof-store
    # contract this bench exists to watch.
    assert rows["campaign_warm"][1] < rows["campaign_cold"][1]

    # Loading files is pure parsing: far faster than campaigning.
    assert rows["load"][1] < rows["campaign_cold"][1]
