"""E2 — the Fig. 1 lemma-generation flow across the design suite.

Regenerates the Results-section claim that spec+RTL-derived helper
assertions enable/accelerate proofs of complex properties.  Shape check:
every helper-needing target flips from ``unknown`` to ``proven``.
"""

from _experiments import run_e2


def test_e2_lemma_flow_suite(benchmark):
    table = benchmark.pedantic(run_e2, rounds=1, iterations=1)
    print()
    print(table.to_text())
    for row in table.rows:
        design, _emitted, _lemmas, target, without, with_, effect = row
        assert with_ == "proven", f"{design}.{target} not proven"
        if without != "proven":
            assert effect == "enabled proof"
