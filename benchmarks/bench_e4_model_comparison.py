"""E4 — the Section V model comparison.

Regenerates the paper's observation that the quality of generated
assertions is much better for OpenAI models (GPT-4-Turbo, GPT-4o) than
for Llama or Gemini.  Shape check: both OpenAI personas beat both
open/competitor personas on proven-assertion yield and hallucination
rate, and converge at least as often.
"""

from _experiments import run_e4


def test_e4_model_comparison(benchmark):
    table = benchmark.pedantic(run_e4, rounds=1, iterations=1)
    print()
    print(table.to_text())
    rows = {row[0]: row for row in table.rows}

    def proven_rate(model):
        emitted = int(rows[model][1])
        return int(rows[model][4]) / max(emitted, 1)

    def halluc(model):
        return float(rows[model][5])

    def converged(model):
        done, total = rows[model][6].split("/")
        return int(done) / int(total)

    for strong in ("gpt-4-turbo", "gpt-4o"):
        for weak in ("llama-3-70b", "gemini-1.5-pro"):
            assert proven_rate(strong) > proven_rate(weak), \
                f"{strong} should out-prove {weak}"
            assert halluc(strong) < halluc(weak)
            assert converged(strong) >= converged(weak)
