"""E1 — the paper's running example (Listings 1-3, Figs. 2-3).

Regenerates: induction-step failure on ``equal_count``, the Fig. 3-style
counterexample, the LLM helper ``count1 == count2`` (Listing 3), and the
closed proof.  Paper-vs-ours shape: without the helper induction does not
converge; with it the proof closes at k=1.
"""

from _experiments import run_e1


def test_e1_sync_counters_case_study(benchmark):
    table = benchmark.pedantic(run_e1, rounds=1, iterations=1)
    print()
    print(table.to_text())
    rows = {row[0]: row for row in table.rows}
    assert rows["plain k-induction"][1] == "unknown"
    assert rows["repair flow (LLM helper)"][1] == "proven"
    assert rows["repair flow (LLM helper)"][2] == "1"
