"""E7 — the portfolio verification service (scheduler + cache).

Batch-verifies the multi-property ``counter_bank`` stress design
sequentially, in parallel (``jobs=4`` worker processes racing
k-induction against BMC per property), and again with a warm result
cache.  Shape checks:

* every verdict matches the design's expectation in all three modes;
* the warm-cache rerun answers entirely from cache and is at least an
  order of magnitude faster than the sequential baseline;
* on a multi-core host the parallel batch beats the sequential one
  (skipped on single-core runners, where racing costs more than it
  saves — there is nothing to fan out onto).
"""

import os

from _experiments import run_e7


def test_e7_portfolio(benchmark):
    table = benchmark.pedantic(run_e7, rounds=1, iterations=1)
    print()
    print(table.to_text())
    rows = {row[0]: row for row in table.rows}
    sequential = rows["sequential (jobs=1)"]
    parallel = rows["parallel (jobs=4)"]
    cached = rows["parallel again (warm cache)"]

    # Verdicts are mode-independent: 5 proven + 1 seeded violation.
    # (Table cells are stored formatted, hence the coercions.)
    for row in (sequential, parallel, cached):
        _mode, _wall, proven, violated, other, _hits, _speedup = row
        assert int(proven) == 5
        assert int(violated) == 1
        assert int(other) == 0

    # The warm-cache rerun answers from cache, massively faster.
    assert int(cached[5]) > 0, "warm rerun produced no cache hits"
    assert float(cached[1]) < float(sequential[1]) / 10

    if (os.cpu_count() or 1) >= 4:
        assert float(parallel[1]) < float(sequential[1]), \
            "parallel portfolio should beat sequential on a multi-core host"
