#!/usr/bin/env python3
"""Regenerate every experiment table and emit a markdown report.

Usage: python benchmarks/run_experiments.py [--json PATH] [EXPERIMENT_ID ...]

Writes the rendered tables to stdout (text) and to
``benchmarks/results.md`` (markdown) for inclusion in EXPERIMENTS.md;
``--json PATH`` additionally dumps every table's rows as JSON for
dashboards and regression tracking, each experiment carrying a
``metrics`` entry — the growth of the process-wide observability
counters over that experiment (solver effort, checks by origin), so a
dashboard can plot cache behaviour and solver load without parsing
table columns.

``--json`` also stamps a ``BENCH_<runid>.json`` trajectory artifact
next to PATH: a per-run snapshot keyed by a timestamp run id, holding
each experiment's wall seconds, verdict rows, and any throughput
(``props/sec`` / ``designs/sec``) columns — the file CI uploads so a
sequence of runs plots as a trajectory without re-parsing reports.
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
sys.path.insert(0, str(Path(__file__).parent.parent / "src"))

from _experiments import ALL_EXPERIMENTS  # noqa: E402

from repro.obs import metrics as obs_metrics  # noqa: E402


def main(argv: list[str]) -> int:
    json_path = None
    if "--json" in argv:
        flag = argv.index("--json")
        try:
            json_path = Path(argv[flag + 1])
        except IndexError:
            print("--json needs a path argument")
            return 1
        argv = argv[:flag] + argv[flag + 2:]
    wanted = argv or list(ALL_EXPERIMENTS)
    sections = []
    dumps = {}
    for exp_id in wanted:
        driver = ALL_EXPERIMENTS.get(exp_id.upper())
        if driver is None:
            print(f"unknown experiment {exp_id!r}; "
                  f"available: {sorted(ALL_EXPERIMENTS)}")
            return 1
        before = obs_metrics.get_registry().snapshot()
        start = time.perf_counter()
        table = driver()
        elapsed = time.perf_counter() - start
        grown = obs_metrics.delta(before,
                                  obs_metrics.get_registry().snapshot())
        print(table.to_text())
        print(f"({exp_id} regenerated in {elapsed:.1f}s)\n")
        sections.append(table.to_markdown() +
                        f"\n*(regenerated in {elapsed:.1f}s)*\n")
        dumps[exp_id.upper()] = {"title": table.title,
                                 "seconds": round(elapsed, 3),
                                 "rows": table.to_rows(),
                                 "metrics": grown}
    out_path = Path(__file__).parent / "results.md"
    out_path.write_text("# Measured experiment tables\n\n" +
                        "\n".join(sections))
    print(f"markdown written to {out_path}")
    if json_path is not None:
        json_path.write_text(json.dumps(dumps, indent=2) + "\n")
        print(f"json written to {json_path}")
        bench_path = _write_trajectory(json_path, dumps)
        print(f"trajectory artifact written to {bench_path}")
    return 0


#: Throughput columns lifted into the trajectory artifact verbatim.
_RATE_COLUMNS = ("props/sec", "designs/sec", "conflicts/sec")


def _write_trajectory(json_path: Path, dumps: dict) -> Path:
    """Stamp the per-run ``BENCH_<runid>.json`` trajectory artifact."""
    run_id = time.strftime("%Y%m%d-%H%M%S")
    experiments = {}
    for exp_id, dump in dumps.items():
        rates = {}
        for row in dump["rows"]:
            label = next(iter(row.values()), "?")
            for column in _RATE_COLUMNS:
                if column in row:
                    rates.setdefault(column, {})[label] = row[column]
        experiments[exp_id] = {
            "seconds": dump["seconds"],
            "throughput": rates,
            "rows": dump["rows"],
        }
    bench_path = json_path.parent / f"BENCH_{run_id}.json"
    bench_path.write_text(json.dumps({
        "run_id": run_id,
        "generated": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "experiments": experiments,
    }, indent=2) + "\n")
    return bench_path


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
