#!/usr/bin/env python3
"""Regenerate every experiment table and emit a markdown report.

Usage: python benchmarks/run_experiments.py [EXPERIMENT_ID ...]

Writes the rendered tables to stdout (text) and to
``benchmarks/results.md`` (markdown) for inclusion in EXPERIMENTS.md.
"""

from __future__ import annotations

import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from _experiments import ALL_EXPERIMENTS  # noqa: E402


def main(argv: list[str]) -> int:
    wanted = argv or list(ALL_EXPERIMENTS)
    sections = []
    for exp_id in wanted:
        driver = ALL_EXPERIMENTS.get(exp_id.upper())
        if driver is None:
            print(f"unknown experiment {exp_id!r}; "
                  f"available: {sorted(ALL_EXPERIMENTS)}")
            return 1
        start = time.perf_counter()
        table = driver()
        elapsed = time.perf_counter() - start
        print(table.to_text())
        print(f"({exp_id} regenerated in {elapsed:.1f}s)\n")
        sections.append(table.to_markdown() +
                        f"\n*(regenerated in {elapsed:.1f}s)*\n")
    out_path = Path(__file__).parent / "results.md"
    out_path.write_text("# Measured experiment tables\n\n" +
                        "\n".join(sections))
    print(f"markdown written to {out_path}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
