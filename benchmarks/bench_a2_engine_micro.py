"""A2 — engine micro-benchmarks underpinning the proof-time numbers."""

from _experiments import run_a2


def test_a2_engine_micro(benchmark):
    table = benchmark.pedantic(run_a2, rounds=1, iterations=1)
    print()
    print(table.to_text())
    assert len(table.rows) >= 5
