"""E8 — the campaign subsystem (proof store + adaptive selection).

Runs three campaigns over six designs against one persistent proof
store: cold (fills the store), warm adaptive (should answer from the
disk tier and prune strategy races from mined history), and warm
full-portfolio (the job-count baseline).  Shape checks:

* verdict mix is identical in all three modes — adaptive selection and
  caching change cost, never answers;
* the warm rerun is answered from the disk store and is at least an
  order of magnitude faster than the cold campaign;
* adaptive selection dispatches strictly fewer strategy jobs than the
  full portfolio once the store is warm.
"""

from _experiments import run_e8


def test_e8_campaign(benchmark):
    table = benchmark.pedantic(run_e8, rounds=1, iterations=1)
    print()
    print(table.to_text())
    rows = {row[0]: row for row in table.rows}
    cold = rows["cold store (adaptive)"]
    warm = rows["warm store (adaptive)"]
    full = rows["warm store (full portfolio)"]

    # Verdicts are mode-independent.  (Cells are stored formatted.)
    for row in (cold, warm, full):
        _mode, _wall, proven, violated, unknown, *_ = row
        assert (proven, violated, unknown) == (cold[2], cold[3], cold[4])

    # Cold run touched the solver, not the store.
    assert int(cold[5]) == 0

    # The warm rerun answers from the persistent tier, massively faster.
    assert int(warm[5]) > 0, "warm campaign produced no disk hits"
    assert float(warm[1]) < float(cold[1]) / 10

    # Adaptive selection prunes the race on a warm store.
    assert int(warm[6]) < int(warm[7]), \
        "adaptive campaign should dispatch fewer jobs than the portfolio"
    assert int(full[6]) == int(full[7])
