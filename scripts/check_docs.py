#!/usr/bin/env python3
"""Docs gate: internal links must resolve, quickstart snippets must run.

Conventions this script enforces (and the docs follow):

* Relative markdown links in ``README.md`` and ``docs/*.md`` must point
  at files that exist; ``#anchor`` fragments must match a heading in
  the target file (GitHub slug rules, simplified).  Links that resolve
  outside the repository (e.g. the CI badge's ``../../actions/...``
  GitHub routing trick) and absolute URLs are skipped.
* Fenced ``bash`` blocks are *runnable documentation*: every
  ``repro-verify ...`` line in them is executed and must exit 0.
  Long-running commands (``serve``, ``worker``), backgrounded lines
  (trailing ``&``), and non-``repro-verify`` lines are skipped.
  Illustrative shell transcripts belong in ``console`` fences, which
  are never executed.

Run from the repository root: ``python scripts/check_docs.py``
(add ``--no-run`` to check links only).
"""

from __future__ import annotations

import argparse
import re
import subprocess
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)
FENCE_RE = re.compile(r"^```(\w*)\s*$")
SNIPPET_TIMEOUT = 600


def doc_files() -> list[Path]:
    files = [REPO_ROOT / "README.md"]
    files += sorted((REPO_ROOT / "docs").glob("*.md"))
    return [f for f in files if f.exists()]


def github_slug(heading: str) -> str:
    """GitHub's heading-anchor slug, close enough for our docs."""
    text = re.sub(r"`([^`]*)`", r"\1", heading).strip().lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def anchors_in(path: Path) -> set[str]:
    return {github_slug(h) for h in HEADING_RE.findall(path.read_text())}


def check_links(path: Path) -> list[str]:
    errors = []
    for target in LINK_RE.findall(path.read_text()):
        if re.match(r"^[a-z][a-z0-9+.-]*:", target):   # http:, mailto:…
            continue
        name, _, anchor = target.partition("#")
        resolved = (path.parent / name).resolve() if name else path
        try:
            resolved.relative_to(REPO_ROOT)
        except ValueError:
            continue    # deliberate out-of-repo link (CI badge routing)
        if not resolved.exists():
            errors.append(f"{path.name}: broken link -> {target}")
            continue
        if anchor and resolved.suffix == ".md" and \
                anchor not in anchors_in(resolved):
            errors.append(f"{path.name}: missing anchor -> {target}")
    return errors


def bash_snippet_lines(path: Path) -> list[str]:
    """The runnable command lines of every ``bash`` fence in one file."""
    lines, fence_lang, pending = [], None, ""
    for raw in path.read_text().splitlines():
        fence = FENCE_RE.match(raw.strip())
        if fence:
            fence_lang = None if fence_lang is not None else \
                (fence.group(1) or "text")
            pending = ""
            continue
        if fence_lang != "bash":
            continue
        line = pending + raw.strip()
        if line.endswith("\\"):
            pending = line[:-1] + " "
            continue
        pending = ""
        lines.append(line)
    return lines


def runnable(line: str) -> bool:
    if not line.startswith("repro-verify "):
        return False
    if line.rstrip().endswith("&"):
        return False
    subcommand = line.split()[1]
    return subcommand not in ("serve", "worker")


def run_snippets(path: Path) -> list[str]:
    errors = []
    for line in bash_snippet_lines(path):
        if not runnable(line):
            continue
        print(f"  $ {line}")
        started = time.perf_counter()
        try:
            proc = subprocess.run(line, shell=True, cwd=REPO_ROOT,
                                  timeout=SNIPPET_TIMEOUT,
                                  capture_output=True, text=True)
        except subprocess.TimeoutExpired:
            errors.append(f"{path.name}: snippet timed out -> {line}")
            continue
        print(f"    ... exit {proc.returncode} in "
              f"{time.perf_counter() - started:.1f}s")
        if proc.returncode != 0:
            errors.append(
                f"{path.name}: snippet failed ({proc.returncode}) -> "
                f"{line}\n{proc.stdout[-2000:]}{proc.stderr[-2000:]}")
    return errors


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--no-run", action="store_true",
                        help="check links only; skip running snippets")
    args = parser.parse_args()

    errors = []
    for path in doc_files():
        print(f"checking {path.relative_to(REPO_ROOT)}")
        errors += check_links(path)
        if not args.no_run:
            errors += run_snippets(path)

    if errors:
        print("\nFAIL")
        for error in errors:
            print(f"  {error}")
        return 1
    print("\ndocs ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
