#!/usr/bin/env python3
"""Render a campaign trace directory into a time breakdown.

A traced run (``repro-verify campaign --trace DIR`` or
``run_campaign(trace_dir=...)``) leaves one
``trace-<host>-<pid>.jsonl`` file per participating process in DIR.
This script stitches them back into one span tree and reports:

* the tree itself (``--tree``), indented, with durations;
* per-phase totals (the campaign root's direct children: compile,
  dispatch, record);
* per-strategy totals over the "check" spans, and per-worker totals
  over the "job" spans — "which engine/worker did this campaign's time
  go to";
* orphan spans (a parent id that matches no recorded span): a healthy
  trace has exactly one root and zero orphans, which ``--strict``
  turns into the exit status (used by CI's obs-smoke job).

Usage::

    python scripts/trace_report.py TRACE_DIR [--tree] [--strict]
    python scripts/trace_report.py trace-host-123.jsonl   # single file
"""

from __future__ import annotations

import argparse
import json
import sys
from collections import defaultdict
from pathlib import Path


def load_spans(path: Path) -> list[dict]:
    """Every span event under ``path`` (a trace dir or one JSONL file)."""
    files = sorted(path.glob("trace-*.jsonl")) if path.is_dir() \
        else [path]
    spans = []
    for file in files:
        for line in file.read_text(encoding="utf-8").splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except json.JSONDecodeError:
                continue  # a torn tail line from a killed process
            if "span_id" in event and "name" in event:
                spans.append(event)
    return spans


def build_tree(spans: list[dict]) -> tuple[list[dict], list[dict],
                                           dict[str, list[dict]]]:
    """(roots, orphans, children-by-parent) over one span list."""
    by_id = {s["span_id"]: s for s in spans}
    children: dict[str, list[dict]] = defaultdict(list)
    roots, orphans = [], []
    for span in spans:
        parent = span.get("parent_id")
        if parent is None:
            roots.append(span)
        elif parent in by_id:
            children[parent].append(span)
        else:
            orphans.append(span)
    for siblings in children.values():
        siblings.sort(key=lambda s: s.get("start", 0.0))
    return roots, orphans, children


def _label(span: dict) -> str:
    attrs = span.get("attrs", {})
    for key in ("strategy", "design", "property", "job_id"):
        if key in attrs:
            detail = attrs.get("property") or attrs.get(key)
            strategy = attrs.get("strategy")
            parts = [p for p in (attrs.get("design"), detail) if p]
            tail = f" [{strategy}]" if strategy else ""
            return f"{span['name']} {'.'.join(dict.fromkeys(parts))}" \
                   f"{tail}"
    return span["name"]


def render_tree(roots: list[dict], children: dict[str, list[dict]],
                max_depth: int) -> list[str]:
    lines = []

    def visit(span: dict, depth: int) -> None:
        if depth > max_depth:
            return
        proc = f"{span.get('host', '?')}:{span.get('pid', '?')}"
        lines.append(f"{'  ' * depth}{_label(span)}  "
                     f"{span.get('dur', 0.0):.3f}s  ({proc})")
        for child in children.get(span["span_id"], ()):
            visit(child, depth + 1)

    for root in sorted(roots, key=lambda s: s.get("start", 0.0)):
        visit(root, 0)
    return lines


def aggregate(spans: list[dict], name: str, attr: str | None = None
              ) -> dict[str, tuple[int, float]]:
    """``{group: (count, total seconds)}`` over spans named ``name``."""
    totals: dict[str, tuple[int, float]] = {}
    for span in spans:
        if span["name"] != name:
            continue
        group = span.get("attrs", {}).get(attr, "?") if attr \
            else span["name"]
        count, seconds = totals.get(group, (0, 0.0))
        totals[group] = (count + 1, seconds + span.get("dur", 0.0))
    return dict(sorted(totals.items(), key=lambda kv: -kv[1][1]))


def _print_section(title: str,
                   totals: dict[str, tuple[int, float]]) -> None:
    if not totals:
        return
    print(f"\n{title}")
    for group, (count, seconds) in totals.items():
        print(f"  {group:<28} {count:>5} spans  {seconds:>9.3f}s")


def main() -> int:
    parser = argparse.ArgumentParser(
        description="stitch a trace directory into one span tree and "
                    "report where the time went")
    parser.add_argument("trace", type=Path,
                        help="trace directory (or one trace-*.jsonl)")
    parser.add_argument("--tree", action="store_true",
                        help="print the full indented span tree")
    parser.add_argument("--max-depth", type=int, default=3,
                        help="tree depth limit (default: 3)")
    parser.add_argument("--strict", action="store_true",
                        help="exit 1 unless exactly one root and zero "
                             "orphans (CI mode)")
    args = parser.parse_args()

    if not args.trace.exists():
        raise SystemExit(f"no such trace: {args.trace}")
    spans = load_spans(args.trace)
    if not spans:
        raise SystemExit(f"{args.trace} holds no span events")

    traces = sorted({s.get("trace_id", "?") for s in spans})
    roots, orphans, children = build_tree(spans)
    processes = sorted({(s.get("host", "?"), s.get("pid", 0))
                        for s in spans})

    print(f"{len(spans)} spans, {len(traces)} trace(s) "
          f"{traces}, {len(processes)} process(es), "
          f"{len(roots)} root(s), {len(orphans)} orphan(s)")
    for host, pid in processes:
        count = sum(1 for s in spans
                    if (s.get("host"), s.get("pid")) == (host, pid))
        print(f"  process {host}:{pid}: {count} spans")

    # Per-phase: the campaign root's direct children.
    for root in roots:
        phases = {c["name"]: c.get("dur", 0.0)
                  for c in children.get(root["span_id"], ())}
        if phases:
            print(f"\nphases under {root['name']} "
                  f"({root.get('dur', 0.0):.3f}s total)")
            for name, seconds in phases.items():
                print(f"  {name:<28} {seconds:>9.3f}s")

    _print_section("jobs by worker",
                   aggregate(spans, "job", "worker"))
    _print_section("checks by strategy",
                   aggregate(spans, "check", "strategy"))

    if orphans:
        print("\norphan spans (parent not recorded):")
        for span in orphans[:10]:
            print(f"  {_label(span)} parent={span.get('parent_id')}")
    if args.tree:
        print()
        print("\n".join(render_tree(roots, children, args.max_depth)))

    if args.strict and (len(roots) != 1 or orphans):
        print(f"\nSTRICT: expected 1 root / 0 orphans, got "
              f"{len(roots)} / {len(orphans)}")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
