#!/usr/bin/env python3
"""Render a campaign trace directory into a time breakdown.

A traced run (``repro-verify campaign --trace DIR`` or
``run_campaign(trace_dir=...)``) leaves one
``trace-<host>-<pid>.jsonl`` file per participating process in DIR.
This script stitches them back into one span tree and reports:

* the tree itself (``--tree``), indented, with durations;
* per-phase totals (the campaign root's direct children: compile,
  dispatch, record);
* per-strategy totals over the "check" spans, and per-worker totals
  over the "job" spans — "which engine/worker did this campaign's time
  go to";
* orphan spans (a parent id that matches no recorded span): a healthy
  trace has exactly one root and zero orphans, which ``--strict``
  turns into the exit status (used by CI's obs-smoke job), naming the
  offending span ids;
* per-span-kind duration percentiles (p50/p95/max) with ``--tree``;
* ``--folded PATH`` exports the tree in folded-stack format — one
  ``root;child;leaf self_ms`` line per span, self time in integer
  milliseconds — ready for any flamegraph renderer
  (``flamegraph.pl``, speedscope, inferno);
* ``--html PATH`` writes a self-contained HTML timeline: one swimlane
  per participating process (annotated with its worker id where jobs
  ran there), spans as positioned bars, no external assets.

Usage::

    python scripts/trace_report.py TRACE_DIR [--tree] [--strict]
        [--folded stacks.folded] [--html timeline.html]
    python scripts/trace_report.py trace-host-123.jsonl   # single file
"""

from __future__ import annotations

import argparse
import json
import sys
from collections import defaultdict
from pathlib import Path


def load_spans(path: Path) -> list[dict]:
    """Every span event under ``path`` (a trace dir or one JSONL file)."""
    files = sorted(path.glob("trace-*.jsonl")) if path.is_dir() \
        else [path]
    spans = []
    for file in files:
        for line in file.read_text(encoding="utf-8").splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except json.JSONDecodeError:
                continue  # a torn tail line from a killed process
            if "span_id" in event and "name" in event:
                spans.append(event)
    return spans


def build_tree(spans: list[dict]) -> tuple[list[dict], list[dict],
                                           dict[str, list[dict]]]:
    """(roots, orphans, children-by-parent) over one span list."""
    by_id = {s["span_id"]: s for s in spans}
    children: dict[str, list[dict]] = defaultdict(list)
    roots, orphans = [], []
    for span in spans:
        parent = span.get("parent_id")
        if parent is None:
            roots.append(span)
        elif parent in by_id:
            children[parent].append(span)
        else:
            orphans.append(span)
    for siblings in children.values():
        siblings.sort(key=lambda s: s.get("start", 0.0))
    return roots, orphans, children


def _label(span: dict) -> str:
    attrs = span.get("attrs", {})
    for key in ("strategy", "design", "property", "job_id"):
        if key in attrs:
            detail = attrs.get("property") or attrs.get(key)
            strategy = attrs.get("strategy")
            parts = [p for p in (attrs.get("design"), detail) if p]
            tail = f" [{strategy}]" if strategy else ""
            return f"{span['name']} {'.'.join(dict.fromkeys(parts))}" \
                   f"{tail}"
    return span["name"]


def render_tree(roots: list[dict], children: dict[str, list[dict]],
                max_depth: int) -> list[str]:
    lines = []

    def visit(span: dict, depth: int) -> None:
        if depth > max_depth:
            return
        proc = f"{span.get('host', '?')}:{span.get('pid', '?')}"
        lines.append(f"{'  ' * depth}{_label(span)}  "
                     f"{span.get('dur', 0.0):.3f}s  ({proc})")
        for child in children.get(span["span_id"], ()):
            visit(child, depth + 1)

    for root in sorted(roots, key=lambda s: s.get("start", 0.0)):
        visit(root, 0)
    return lines


def aggregate(spans: list[dict], name: str, attr: str | None = None
              ) -> dict[str, tuple[int, float]]:
    """``{group: (count, total seconds)}`` over spans named ``name``."""
    totals: dict[str, tuple[int, float]] = {}
    for span in spans:
        if span["name"] != name:
            continue
        group = span.get("attrs", {}).get(attr, "?") if attr \
            else span["name"]
        count, seconds = totals.get(group, (0, 0.0))
        totals[group] = (count + 1, seconds + span.get("dur", 0.0))
    return dict(sorted(totals.items(), key=lambda kv: -kv[1][1]))


def _print_section(title: str,
                   totals: dict[str, tuple[int, float]]) -> None:
    if not totals:
        return
    print(f"\n{title}")
    for group, (count, seconds) in totals.items():
        print(f"  {group:<28} {count:>5} spans  {seconds:>9.3f}s")


def kind_percentiles(spans: list[dict]
                     ) -> dict[str, tuple[int, float, float, float]]:
    """``{kind: (count, p50, p95, max)}`` durations per span name."""
    by_kind: dict[str, list[float]] = defaultdict(list)
    for span in spans:
        by_kind[span["name"]].append(span.get("dur", 0.0))
    stats = {}
    for kind, durs in by_kind.items():
        durs.sort()
        stats[kind] = (len(durs),
                       durs[int(0.50 * (len(durs) - 1))],
                       durs[int(0.95 * (len(durs) - 1))],
                       durs[-1])
    return dict(sorted(stats.items(), key=lambda kv: -kv[1][3]))


# ----------------------------------------------------------------------
# Exports: folded stacks (flamegraphs) and the HTML timeline
# ----------------------------------------------------------------------

def _frame(span: dict) -> str:
    """One flamegraph frame: no ';' (stack separator) or ' ' (the
    count separator) may survive in a frame name."""
    return _label(span).replace(";", ":").replace(" ", "_")


def fold_stacks(roots: list[dict],
                children: dict[str, list[dict]]) -> list[str]:
    """The span tree in folded-stack format (``a;b;c self_ms``).

    Each span contributes one line weighted by its *self* time —
    duration minus its children's — so a renderer's widths add up
    instead of double-counting nested spans.
    """
    lines: list[str] = []

    def visit(span: dict, stack: list[str]) -> None:
        stack = stack + [_frame(span)]
        kids = children.get(span["span_id"], ())
        self_seconds = span.get("dur", 0.0) - \
            sum(c.get("dur", 0.0) for c in kids)
        # Concurrent children (a parallel strategy race) can sum past
        # the parent's wall clock; clamp rather than emit negatives.
        self_ms = max(int(round(self_seconds * 1000)), 0)
        lines.append(";".join(stack) + f" {self_ms}")
        for child in kids:
            visit(child, stack)

    for root in sorted(roots, key=lambda s: s.get("start", 0.0)):
        visit(root, [])
    return lines


def _lane_key(span: dict) -> tuple[str, int]:
    return (span.get("host", "?"), span.get("pid", 0))


_HTML_PAGE = """<!DOCTYPE html>
<html><head><meta charset="utf-8"><title>{title}</title><style>
body {{ font: 12px monospace; background: #1c1c28; color: #d8d8e0;
        margin: 16px; }}
h1 {{ font-size: 14px; }}
.lane {{ position: relative; height: 26px; margin: 2px 0;
         background: #26263a; border-radius: 3px; }}
.lane-label {{ position: absolute; left: 4px; top: 5px; z-index: 2;
               color: #8888aa; pointer-events: none; }}
.span {{ position: absolute; top: 3px; height: 20px; overflow: hidden;
         border-radius: 2px; white-space: nowrap; font-size: 10px;
         line-height: 20px; padding-left: 2px; color: #101018;
         box-sizing: border-box; min-width: 2px; }}
.axis {{ color: #8888aa; margin: 8px 0; }}
</style></head><body>
<h1>{title}</h1>
<div class="axis">0s &mdash; {total:.3f}s wall, {spans} spans,
{lanes} lanes (one per process; hover a bar for details)</div>
{body}
</body></html>
"""


def render_html(spans: list[dict], title: str) -> str:
    """A dependency-free HTML timeline: one swimlane per process."""
    timed = [s for s in spans if "start" in s]
    title = _escape(title)
    if not timed:
        return _HTML_PAGE.format(title=title, total=0.0, spans=0,
                                 lanes=0, body="<p>no spans</p>")
    t0 = min(s["start"] for s in timed)
    total = max(s["start"] + s.get("dur", 0.0) for s in timed) - t0
    total = max(total, 1e-9)
    lanes: dict[tuple[str, int], list[dict]] = defaultdict(list)
    for span in timed:
        lanes[_lane_key(span)].append(span)
    rows = []
    for key in sorted(lanes):
        host, pid = key
        lane_spans = sorted(lanes[key], key=lambda s: s["start"])
        # Annotate the lane with the worker id(s) whose jobs ran here.
        workers = sorted({s.get("attrs", {}).get("worker")
                          for s in lane_spans
                          if s.get("attrs", {}).get("worker")})
        label = f"{host}:{pid}"
        if workers:
            label += f" ({', '.join(workers)})"
        bars = []
        for span in lane_spans:
            left = (span["start"] - t0) / total * 100.0
            width = max(span.get("dur", 0.0) / total * 100.0, 0.15)
            hue = sum(span["name"].encode()) * 37 % 360
            detail = (f"{_label(span)} — {span.get('dur', 0.0):.4f}s "
                      f"@ +{span['start'] - t0:.4f}s "
                      f"[{span['span_id']}]")
            bars.append(
                f'<div class="span" title="{_escape(detail)}" '
                f'style="left:{left:.3f}%;width:{width:.3f}%;'
                f'background:hsl({hue},65%,62%)">'
                f'{_escape(span["name"])}</div>')
        rows.append(f'<div class="lane">'
                    f'<span class="lane-label">{_escape(label)}</span>'
                    f'{"".join(bars)}</div>')
    return _HTML_PAGE.format(title=title, total=total,
                             spans=len(timed), lanes=len(lanes),
                             body="\n".join(rows))


def _escape(text: str) -> str:
    return (text.replace("&", "&amp;").replace("<", "&lt;")
            .replace(">", "&gt;").replace('"', "&quot;"))


def main() -> int:
    parser = argparse.ArgumentParser(
        description="stitch a trace directory into one span tree and "
                    "report where the time went")
    parser.add_argument("trace", type=Path,
                        help="trace directory (or one trace-*.jsonl)")
    parser.add_argument("--tree", action="store_true",
                        help="print the full indented span tree")
    parser.add_argument("--max-depth", type=int, default=3,
                        help="tree depth limit (default: 3)")
    parser.add_argument("--strict", action="store_true",
                        help="exit 1 unless exactly one root and zero "
                             "orphans (CI mode); names the offending "
                             "span ids")
    parser.add_argument("--folded", type=Path, default=None,
                        metavar="PATH",
                        help="write the tree as folded stacks "
                             "(flamegraph.pl / speedscope input)")
    parser.add_argument("--html", type=Path, default=None,
                        metavar="PATH",
                        help="write a self-contained HTML timeline "
                             "(one swimlane per process)")
    args = parser.parse_args()

    if not args.trace.exists():
        raise SystemExit(f"no such trace: {args.trace}")
    spans = load_spans(args.trace)
    if not spans:
        raise SystemExit(f"{args.trace} holds no span events")

    traces = sorted({s.get("trace_id", "?") for s in spans})
    roots, orphans, children = build_tree(spans)
    processes = sorted({(s.get("host", "?"), s.get("pid", 0))
                        for s in spans})

    print(f"{len(spans)} spans, {len(traces)} trace(s) "
          f"{traces}, {len(processes)} process(es), "
          f"{len(roots)} root(s), {len(orphans)} orphan(s)")
    for host, pid in processes:
        count = sum(1 for s in spans
                    if (s.get("host"), s.get("pid")) == (host, pid))
        print(f"  process {host}:{pid}: {count} spans")

    # Per-phase: the campaign root's direct children.
    for root in roots:
        phases = {c["name"]: c.get("dur", 0.0)
                  for c in children.get(root["span_id"], ())}
        if phases:
            print(f"\nphases under {root['name']} "
                  f"({root.get('dur', 0.0):.3f}s total)")
            for name, seconds in phases.items():
                print(f"  {name:<28} {seconds:>9.3f}s")

    _print_section("jobs by worker",
                   aggregate(spans, "job", "worker"))
    _print_section("checks by strategy",
                   aggregate(spans, "check", "strategy"))

    if orphans:
        print("\norphan spans (parent not recorded):")
        for span in orphans[:10]:
            print(f"  {_label(span)} span_id={span.get('span_id')} "
                  f"parent={span.get('parent_id')}")
    if args.tree:
        print("\ndurations by span kind")
        for kind, (count, p50, p95, peak) in \
                kind_percentiles(spans).items():
            print(f"  {kind:<20} {count:>5} spans  p50 {p50:>8.3f}s  "
                  f"p95 {p95:>8.3f}s  max {peak:>8.3f}s")
        print()
        print("\n".join(render_tree(roots, children, args.max_depth)))

    if args.folded:
        lines = fold_stacks(roots, children)
        args.folded.write_text("\n".join(lines) + "\n",
                               encoding="utf-8")
        print(f"\nwrote {len(lines)} folded stacks to {args.folded}")
    if args.html:
        title = f"trace {', '.join(traces)} — {args.trace}"
        args.html.write_text(render_html(spans, title),
                             encoding="utf-8")
        print(f"wrote HTML timeline to {args.html}")

    if args.strict and (len(roots) != 1 or orphans):
        print(f"\nSTRICT: expected 1 root / 0 orphans, got "
              f"{len(roots)} / {len(orphans)}")
        if len(roots) != 1:
            ids = ", ".join(s.get("span_id", "?") for s in roots) \
                or "(none)"
            print(f"  root span ids: {ids}")
        for span in orphans:
            print(f"  orphan span id {span.get('span_id')} "
                  f"({span['name']}) references missing parent "
                  f"{span.get('parent_id')}")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
