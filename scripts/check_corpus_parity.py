#!/usr/bin/env python3
"""Corpus CI gate: round-trip verdict parity and twin byte-identity.

Four checks, all against the checked-in ``corpus/`` tree:

1. **Freshness** — regenerating the corpus (scripts/make_corpus.py)
   into a scratch directory produces byte-identical files, so the
   checked-in tree can never drift from the exporters.
2. **Twin identity** — every binary ``.aig`` re-renders as ascii
   byte-identically to its ``.aag`` twin.
3. **Size floor** — the corpus loader yields at least ``--min-designs``
   designs (default 15).
4. **Verdict parity** — for every registry design, exporting to AIGER
   and BTOR2, re-importing, and re-running k-induction (at the
   property's own ``max_k``) plus BMC (at ``--bound``) reproduces the
   native verdict exactly.

Run from the repository root: ``python scripts/check_corpus_parity.py``
"""

from __future__ import annotations

import argparse
import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))
sys.path.insert(0, str(Path(__file__).resolve().parent))

from repro.designs import load_corpus                    # noqa: E402
from repro.designs.base import Design                    # noqa: E402
from repro.designs.registry import all_designs           # noqa: E402
from repro.formats import (export_design, import_design,  # noqa: E402
                           read_aiger_file, write_aiger_ascii)
from repro.mc import ProofEngine, bmc                    # noqa: E402
from repro.mc.engine import EngineConfig                 # noqa: E402
from repro.mc.property import SafetyProperty             # noqa: E402
from repro.sva.compile import MonitorContext             # noqa: E402


def check_freshness(corpus_dir: Path) -> list[str]:
    import make_corpus

    errors: list[str] = []
    with tempfile.TemporaryDirectory() as scratch:
        fresh_root = Path(scratch)
        make_corpus.regenerate(fresh_root)
        fresh = {p.relative_to(fresh_root).as_posix(): p
                 for p in fresh_root.rglob("*") if p.is_file()}
        checked_in = {p.relative_to(corpus_dir).as_posix(): p
                      for p in corpus_dir.rglob("*") if p.is_file()}
        for rel in sorted(set(fresh) | set(checked_in)):
            if rel not in fresh:
                errors.append(f"stale corpus file not regenerated: {rel}")
            elif rel not in checked_in:
                errors.append(f"missing corpus file: {rel} "
                              "(run scripts/make_corpus.py)")
            elif fresh[rel].read_bytes() != checked_in[rel].read_bytes():
                errors.append(f"corpus file differs from regeneration: "
                              f"{rel} (run scripts/make_corpus.py)")
    return errors


def check_twins(corpus_dir: Path) -> list[str]:
    errors: list[str] = []
    for aig in sorted(corpus_dir.rglob("*.aig")):
        aag = aig.with_suffix(".aag")
        if not aag.is_file():
            errors.append(f"{aig}: binary twin without an .aag")
            continue
        rendered = write_aiger_ascii(read_aiger_file(aig))
        if rendered != aag.read_text():
            errors.append(f"{aig}: ascii rendering differs from "
                          f"{aag.name}")
    return errors


def _verdicts(design: Design, bound: int) -> dict[str, tuple[str, str]]:
    """(k-induction status, BMC status) per property, via the same
    monitor-compilation path the verification flow uses."""
    system = design.system()
    out: dict[str, tuple[str, str]] = {}
    for spec in design.properties:
        ctx = MonitorContext(system)
        prop = ctx.add(spec.sva, name=spec.name)
        engine = ProofEngine(ctx.system, EngineConfig(max_k=spec.max_k))
        ind = engine.prove(prop).status.value
        ref = bmc(ctx.system, prop, bound=bound).status.value
        out[spec.name] = (ind, ref)
    return out


def check_parity(bound: int) -> list[str]:
    errors: list[str] = []
    with tempfile.TemporaryDirectory() as scratch:
        scratch_dir = Path(scratch)
        for design in all_designs():
            native = _verdicts(design, bound)
            for fmt, suffix in (("aiger", ".aag"), ("btor2", ".btor2")):
                path = scratch_dir / (design.name + suffix)
                path.write_text(export_design(design, fmt))
                back = _verdicts(import_design(path, name=design.name),
                                 bound)
                if back != native:
                    diffs = {k: (native.get(k), back.get(k))
                             for k in set(native) | set(back)
                             if native.get(k) != back.get(k)}
                    errors.append(
                        f"{design.name} [{fmt}]: verdicts diverge "
                        f"after round-trip: {diffs}")
                else:
                    print(f"  parity ok: {design.name} [{fmt}] "
                          f"({len(native)} properties)")
    return errors


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--corpus-dir",
                        default=str(REPO_ROOT / "corpus"))
    parser.add_argument("--min-designs", type=int, default=15)
    parser.add_argument("--bound", type=int, default=5,
                        help="BMC bound for the parity re-checks")
    parser.add_argument("--skip-parity", action="store_true",
                        help="only run the cheap structural checks")
    args = parser.parse_args(argv)
    corpus_dir = Path(args.corpus_dir)

    errors: list[str] = []
    errors += check_freshness(corpus_dir)
    errors += check_twins(corpus_dir)
    designs = load_corpus(corpus_dir)
    print(f"corpus: {len(designs)} designs, "
          f"{sum(len(d.properties) for d in designs)} properties")
    if len(designs) < args.min_designs:
        errors.append(f"corpus holds only {len(designs)} designs "
                      f"(floor: {args.min_designs})")
    if not args.skip_parity:
        errors += check_parity(args.bound)

    if errors:
        print(f"\nFAIL: {len(errors)} corpus check(s) failed:")
        for err in errors:
            print(f"  - {err}")
        return 1
    print("corpus parity: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
