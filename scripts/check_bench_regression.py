#!/usr/bin/env python3
"""Perf-regression gate: fresh benchmark numbers vs committed baselines.

Compares a fresh ``run_experiments.py --json`` dump against the
committed baseline for the selected experiment (``--experiment``,
default E10 → ``benchmarks/baselines/bench_e10.json``) and fails
(exit 1) when any gated row's rate figure regressed more than the
threshold (default 30%).  E11 gates the corpus campaign's designs/sec
the same way against ``bench_e11.json``.

Gating rules, chosen so the gate is strict where the signal is real and
silent where it would be noise:

* the ``TOTAL`` row is always gated — it aggregates enough solver time
  to be stable on shared CI runners;
* per-workload rows are gated only when the *baseline* spent at least
  ``--min-solver-seconds`` (default 0.05s) inside the solver on them;
  millisecond-scale rows flap on timer resolution and scheduler jitter;
* a workload present in the baseline but missing from the fresh run is
  an error (a silently dropped benchmark is itself a regression);
  workloads new in the fresh run are reported but not gated (no
  baseline to compare against — commit a refreshed baseline to start
  gating them);
* when the fresh run carries the paired ``obs_metrics_on`` /
  ``obs_metrics_off`` rows, their props/sec ratio is gated *within the
  fresh run* (no baseline involved): instrumentation overhead above
  ``--obs-threshold`` (default 5%) fails the gate.  This is the
  enforcement of the overhead contract in ``docs/observability.md``.

Faster-than-baseline results never fail; refresh the committed baseline
when the improvement is meant to become the new floor::

    PYTHONPATH=src python benchmarks/run_experiments.py \
        --json benchmarks/baselines/bench_e10.json E10

Usage::

    python scripts/check_bench_regression.py FRESH.json
    python scripts/check_bench_regression.py FRESH.json --threshold 0.5
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
BASELINE_DIR = REPO_ROOT / "benchmarks" / "baselines"

#: Per-experiment gate configuration: which column keys the rows, which
#: column is the gated rate, and which carries the in-solver time used
#: for the per-row noise cutoff.
EXPERIMENTS = {
    "E10": {"key": "workload", "rate": "props/sec",
            "solver": "solver (s)", "baseline": "bench_e10.json"},
    "E11": {"key": "phase", "rate": "designs/sec",
            "solver": "solver (s)", "baseline": "bench_e11.json"},
}


def load_rows(path: Path, experiment: str,
              config: dict) -> dict[str, dict[str, str]]:
    """One experiment's rows from a JSON dump, keyed by row label."""
    try:
        payload = json.loads(path.read_text())
    except FileNotFoundError:
        raise SystemExit(f"missing benchmark dump: {path}")
    except json.JSONDecodeError as exc:
        raise SystemExit(f"unparseable benchmark dump {path}: {exc}")
    section = payload.get(experiment)
    if section is None:
        raise SystemExit(f"{path} has no {experiment} section "
                         f"(found: {sorted(payload)})")
    rows = {}
    for row in section["rows"]:
        rows[row[config["key"]]] = row
    if "TOTAL" not in rows:
        raise SystemExit(f"{path}: {experiment} rows lack the TOTAL "
                         f"aggregate the gate keys on")
    return rows


def main() -> int:
    parser = argparse.ArgumentParser(
        description="fail when a gated benchmark rate regressed vs the "
                    "committed baseline")
    parser.add_argument("fresh", type=Path,
                        help="JSON dump from the current run "
                             "(run_experiments.py --json PATH <EXP>)")
    parser.add_argument("--experiment", default="E10",
                        choices=sorted(EXPERIMENTS),
                        help="which experiment's rows to gate "
                             "(default: E10)")
    parser.add_argument("--baseline", type=Path, default=None,
                        help="committed baseline (default: the "
                             "experiment's file under "
                             "benchmarks/baselines/)")
    parser.add_argument("--threshold", type=float, default=0.30,
                        help="maximum tolerated fractional drop in "
                             "props/sec (default: 0.30)")
    parser.add_argument("--min-solver-seconds", type=float, default=0.05,
                        help="gate per-workload rows only above this "
                             "baseline in-solver time (default: 0.05)")
    parser.add_argument("--obs-threshold", type=float, default=0.05,
                        help="maximum tolerated fractional props/sec "
                             "overhead of metrics-on vs metrics-off "
                             "(default: 0.05)")
    args = parser.parse_args()

    config = EXPERIMENTS[args.experiment]
    rate_column = config["rate"]
    solver_column = config["solver"]
    baseline_path = args.baseline or BASELINE_DIR / config["baseline"]

    baseline = load_rows(baseline_path, args.experiment, config)
    fresh = load_rows(args.fresh, args.experiment, config)

    failures = []
    floor = 1.0 - args.threshold
    print(f"{config['key']:<22} {'baseline':>12} {'fresh':>12} "
          f"{'ratio':>7}  gate")
    for label, base_row in baseline.items():
        if label not in fresh:
            failures.append(f"row {label!r} missing from fresh run")
            continue
        base_rate = float(base_row[rate_column])
        fresh_rate = float(fresh[label][rate_column])
        ratio = fresh_rate / base_rate if base_rate else float("inf")
        gated = label == "TOTAL" or \
            float(base_row[solver_column]) >= args.min_solver_seconds
        verdict = "ok"
        if gated and ratio < floor:
            verdict = "FAIL"
            failures.append(
                f"{label}: {rate_column} {base_rate:,.0f} -> "
                f"{fresh_rate:,.0f} ({ratio:.2f}x, floor {floor:.2f}x)")
        elif not gated:
            verdict = "skip (baseline solver time "\
                      f"{float(base_row[solver_column]):.3f}s)"
        print(f"{label:<22} {base_rate:>12,.0f} {fresh_rate:>12,.0f} "
              f"{ratio:>6.2f}x  {verdict}")
    for label in fresh:
        if label not in baseline:
            print(f"{label:<22} {'-':>12} "
                  f"{float(fresh[label][rate_column]):>12,.0f} "
                  f"{'-':>7}  new (not gated)")

    # Instrumentation-overhead gate: paired rows within the fresh run.
    if "obs_metrics_on" in fresh and "obs_metrics_off" in fresh:
        on = float(fresh["obs_metrics_on"][rate_column])
        off = float(fresh["obs_metrics_off"][rate_column])
        ratio = on / off if off else float("inf")
        obs_floor = 1.0 - args.obs_threshold
        verdict = "ok" if ratio >= obs_floor else "FAIL"
        if verdict == "FAIL":
            failures.append(
                f"obs overhead: metrics-on props/sec is {ratio:.2f}x "
                f"metrics-off (floor {obs_floor:.2f}x) — "
                f"instrumentation costs more than "
                f"{args.obs_threshold:.0%}")
        print(f"{'obs on/off':<22} {off:>12,.0f} {on:>12,.0f} "
              f"{ratio:>6.2f}x  {verdict} (overhead gate)")

    if failures:
        print("\nFAIL: solver performance regressed")
        for failure in failures:
            print(f"  {failure}")
        return 1
    print("\nbench ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
