#!/usr/bin/env python3
"""Perf-regression gate: fresh E10 numbers vs the committed baseline.

Compares a fresh ``run_experiments.py --json`` dump against
``benchmarks/baselines/bench_e10.json`` and fails (exit 1) when any
gated workload's propagations/sec figure regressed more than the
threshold (default 30%).

Gating rules, chosen so the gate is strict where the signal is real and
silent where it would be noise:

* the ``TOTAL`` row is always gated — it aggregates enough solver time
  to be stable on shared CI runners;
* per-workload rows are gated only when the *baseline* spent at least
  ``--min-solver-seconds`` (default 0.05s) inside the solver on them;
  millisecond-scale rows flap on timer resolution and scheduler jitter;
* a workload present in the baseline but missing from the fresh run is
  an error (a silently dropped benchmark is itself a regression);
  workloads new in the fresh run are reported but not gated (no
  baseline to compare against — commit a refreshed baseline to start
  gating them);
* when the fresh run carries the paired ``obs_metrics_on`` /
  ``obs_metrics_off`` rows, their props/sec ratio is gated *within the
  fresh run* (no baseline involved): instrumentation overhead above
  ``--obs-threshold`` (default 5%) fails the gate.  This is the
  enforcement of the overhead contract in ``docs/observability.md``.

Faster-than-baseline results never fail; refresh the committed baseline
when the improvement is meant to become the new floor::

    PYTHONPATH=src python benchmarks/run_experiments.py \
        --json benchmarks/baselines/bench_e10.json E10

Usage::

    python scripts/check_bench_regression.py FRESH.json
    python scripts/check_bench_regression.py FRESH.json --threshold 0.5
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_BASELINE = REPO_ROOT / "benchmarks" / "baselines" / "bench_e10.json"

EXPERIMENT = "E10"
KEY_COLUMN = "workload"
RATE_COLUMN = "props/sec"
SOLVER_COLUMN = "solver (s)"


def load_rows(path: Path) -> dict[str, dict[str, str]]:
    """The E10 rows of one JSON dump, keyed by workload label."""
    try:
        payload = json.loads(path.read_text())
    except FileNotFoundError:
        raise SystemExit(f"missing benchmark dump: {path}")
    except json.JSONDecodeError as exc:
        raise SystemExit(f"unparseable benchmark dump {path}: {exc}")
    section = payload.get(EXPERIMENT)
    if section is None:
        raise SystemExit(f"{path} has no {EXPERIMENT} section "
                         f"(found: {sorted(payload)})")
    rows = {}
    for row in section["rows"]:
        rows[row[KEY_COLUMN]] = row
    if "TOTAL" not in rows:
        raise SystemExit(f"{path}: {EXPERIMENT} rows lack the TOTAL "
                         f"aggregate the gate keys on")
    return rows


def main() -> int:
    parser = argparse.ArgumentParser(
        description="fail when E10 propagations/sec regressed vs the "
                    "committed baseline")
    parser.add_argument("fresh", type=Path,
                        help="JSON dump from the current run "
                             "(run_experiments.py --json PATH E10)")
    parser.add_argument("--baseline", type=Path, default=DEFAULT_BASELINE,
                        help=f"committed baseline (default: "
                             f"{DEFAULT_BASELINE.relative_to(REPO_ROOT)})")
    parser.add_argument("--threshold", type=float, default=0.30,
                        help="maximum tolerated fractional drop in "
                             "props/sec (default: 0.30)")
    parser.add_argument("--min-solver-seconds", type=float, default=0.05,
                        help="gate per-workload rows only above this "
                             "baseline in-solver time (default: 0.05)")
    parser.add_argument("--obs-threshold", type=float, default=0.05,
                        help="maximum tolerated fractional props/sec "
                             "overhead of metrics-on vs metrics-off "
                             "(default: 0.05)")
    args = parser.parse_args()

    baseline = load_rows(args.baseline)
    fresh = load_rows(args.fresh)

    failures = []
    floor = 1.0 - args.threshold
    print(f"{'workload':<22} {'baseline':>12} {'fresh':>12} "
          f"{'ratio':>7}  gate")
    for label, base_row in baseline.items():
        if label not in fresh:
            failures.append(f"workload {label!r} missing from fresh run")
            continue
        base_rate = float(base_row[RATE_COLUMN])
        fresh_rate = float(fresh[label][RATE_COLUMN])
        ratio = fresh_rate / base_rate if base_rate else float("inf")
        gated = label == "TOTAL" or \
            float(base_row[SOLVER_COLUMN]) >= args.min_solver_seconds
        verdict = "ok"
        if gated and ratio < floor:
            verdict = "FAIL"
            failures.append(
                f"{label}: props/sec {base_rate:,.0f} -> "
                f"{fresh_rate:,.0f} ({ratio:.2f}x, floor {floor:.2f}x)")
        elif not gated:
            verdict = "skip (baseline solver time "\
                      f"{float(base_row[SOLVER_COLUMN]):.3f}s)"
        print(f"{label:<22} {base_rate:>12,.0f} {fresh_rate:>12,.0f} "
              f"{ratio:>6.2f}x  {verdict}")
    for label in fresh:
        if label not in baseline:
            print(f"{label:<22} {'-':>12} "
                  f"{float(fresh[label][RATE_COLUMN]):>12,.0f} "
                  f"{'-':>7}  new (not gated)")

    # Instrumentation-overhead gate: paired rows within the fresh run.
    if "obs_metrics_on" in fresh and "obs_metrics_off" in fresh:
        on = float(fresh["obs_metrics_on"][RATE_COLUMN])
        off = float(fresh["obs_metrics_off"][RATE_COLUMN])
        ratio = on / off if off else float("inf")
        obs_floor = 1.0 - args.obs_threshold
        verdict = "ok" if ratio >= obs_floor else "FAIL"
        if verdict == "FAIL":
            failures.append(
                f"obs overhead: metrics-on props/sec is {ratio:.2f}x "
                f"metrics-off (floor {obs_floor:.2f}x) — "
                f"instrumentation costs more than "
                f"{args.obs_threshold:.0%}")
        print(f"{'obs on/off':<22} {off:>12,.0f} {on:>12,.0f} "
              f"{ratio:>6.2f}x  {verdict} (overhead gate)")

    if failures:
        print("\nFAIL: solver performance regressed")
        for failure in failures:
            print(f"  {failure}")
        return 1
    print("\nbench ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
