#!/usr/bin/env python3
"""Profile the SAT/model-checking hot path and report top hotspots.

Runs a registry-wide batch of solver-heavy workloads (the E10
micro-benchmark shapes by default: deep BMC, a mixed bounded/induction
portfolio, unseeded PDR) under :mod:`cProfile` and prints the top-N
functions by ``tottime`` — the view that found the flat-array rewrite's
targets (``_propagate``, ``_analyze``, ``_value`` call overhead,
``_reduce_db`` scans).

Usage::

    python scripts/profile_solver.py                 # E10 shapes, top 25
    python scripts/profile_solver.py --top 40 --sort cumulative
    python scripts/profile_solver.py --experiments E9 E10
    python scripts/profile_solver.py --solver-only   # repro.sat.* frames

``--solver-only`` restricts the report to frames inside ``repro/sat``,
which answers "where does in-solver time go"; the unrestricted view
answers "how much of the wall is solver at all" (encoding, bit-blasting
and Python harness overhead show up as siblings).
"""

from __future__ import annotations

import argparse
import cProfile
import io
import pstats
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))
sys.path.insert(0, str(REPO_ROOT / "benchmarks"))


def run_workloads(experiment_ids: list[str]) -> None:
    from _experiments import ALL_EXPERIMENTS
    for exp_id in experiment_ids:
        driver = ALL_EXPERIMENTS.get(exp_id.upper())
        if driver is None:
            raise SystemExit(f"unknown experiment {exp_id!r}; "
                             f"available: {sorted(ALL_EXPERIMENTS)}")
        driver()


def main() -> int:
    parser = argparse.ArgumentParser(
        description="cProfile the solver hot path over benchmark "
                    "workloads")
    parser.add_argument("--experiments", nargs="+", default=["E10"],
                        help="experiment ids to run under the profiler "
                             "(default: E10)")
    parser.add_argument("--top", type=int, default=25,
                        help="number of hotspot rows to print")
    parser.add_argument("--sort", default="tottime",
                        choices=["tottime", "cumulative", "ncalls"],
                        help="pstats sort key")
    parser.add_argument("--solver-only", action="store_true",
                        help="restrict the report to repro/sat frames")
    args = parser.parse_args()

    profiler = cProfile.Profile()
    profiler.enable()
    try:
        run_workloads(args.experiments)
    finally:
        profiler.disable()

    buf = io.StringIO()
    stats = pstats.Stats(profiler, stream=buf)
    stats.strip_dirs().sort_stats(args.sort)
    if args.solver_only:
        stats.print_stats(r"solver\.py|external\.py|dimacs\.py",
                          args.top)
    else:
        stats.print_stats(args.top)
    print(buf.getvalue())
    return 0


if __name__ == "__main__":
    sys.exit(main())
