#!/usr/bin/env python3
"""Regenerate the checked-in benchmark corpus under ``corpus/``.

The corpus has two halves:

* **Exported registry designs** — every built-in design serialized as
  ascii AIGER into ``corpus/<family>/<name>.aag``, a BTOR2 twin for a
  word-level subset, and binary ``.aig`` twins for a few (the
  round-trip CI gate checks the twins stay byte-equivalent).
* **Hand-written classics** — tiny AIGER models in the style of the
  HWMCC starter set (toggle latches, saturating counters, a ring
  shifter), carrying ``repro-prop`` metadata so their expected verdicts
  survive import.

Run from the repository root::

    python scripts/make_corpus.py [--corpus-dir DIR]

Regeneration is deterministic: running it twice produces identical
bytes, so CI can diff the tree against a fresh export.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.designs.registry import all_designs          # noqa: E402
from repro.formats import (export_design, read_aiger,   # noqa: E402
                           write_aiger_ascii, write_aiger_binary)

#: Designs that also get a BTOR2 twin (word-level export coverage).
BTOR2_TWINS = {"updown_counter", "alu_accum", "fifo_ctrl", "lfsr16"}

#: Designs that also get a binary ``.aig`` twin (byte-identity gate).
BINARY_TWINS = {"updown_counter", "sync_counters_bug", "gray_counter"}


# Hand-written classics.  Comments carry repro-prop metadata (see
# repro.formats.bridge) so importers know the expected verdicts.  The
# texts below are normalized through the reader+writer before landing
# on disk, so the checked-in files are always canonical serializations.
CLASSICS: dict[str, str] = {
    # Toggle latch: starts 0, inverts every cycle; bad = latch AND NOT
    # latch — structurally unsatisfiable, safe at k=1.
    "classics/toggle_safe.aag": """\
aag 2 0 1 0 1 1
2 3 0
4
4 3 2
l0 toggle
b0 never_both
c
repro-prop 0 name=never_both expect=proven max_k=2
""",
    # Two-bit ripple counter 00->10->01->11; bad when both bits are 1,
    # which happens at cycle 3.  Violated.
    "classics/count2_bad.aag": """\
aag 6 0 2 0 4 1
2 3 0
4 11 0
12
6 4 3
8 5 2
10 9 7
12 4 2
l0 bit0
l1 bit1
b0 reaches_three
c
repro-prop 0 name=reaches_three expect=violated max_k=5
""",
    # Constant-zero self-loop latch with bad = latch: trivially safe,
    # the smallest possible model-checking instance.
    "classics/stuck_zero.aag": """\
aag 1 0 1 0 0 1
2 2 0
2
l0 stuck
b0 never_one
c
repro-prop 0 name=never_one expect=proven max_k=1
""",
    # Three-stage one-hot ring: the token rotates r0->r1->r2->r0.  Bad
    # if two stages hold the token at once; rotation preserves the
    # token count, so this is 1-inductive from the one-hot reset.
    "classics/ring3.aag": """\
aag 8 0 3 0 5 1
2 6 1
4 2 0
6 4 0
17
8 4 2
10 6 2
12 6 4
14 11 9
16 14 13
l0 r0
l1 r1
l2 r2
b0 two_tokens
c
repro-prop 0 name=two_tokens expect=proven max_k=3
""",
    # Uninitialized latch fed by a free input; bad = latch value.
    # Violated at cycle 0 by choosing the initial latch value.
    "classics/free_latch.aag": """\
aag 2 1 1 0 0 1
2
4 2 4
4
i0 din
l0 q
b0 can_be_one
c
repro-prop 0 name=can_be_one expect=violated max_k=2
""",
}


def regenerate(corpus_dir: Path) -> list[Path]:
    written: list[Path] = []

    def emit(rel: str, payload: str | bytes) -> None:
        path = corpus_dir / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        if isinstance(payload, bytes):
            path.write_bytes(payload)
        else:
            path.write_text(payload)
        written.append(path)

    for design in all_designs():
        base = f"{design.family}/{design.name}"
        ascii_text = export_design(design, "aiger")
        emit(base + ".aag", ascii_text)
        if design.name in BINARY_TWINS:
            emit(base + ".aig", export_design(design, "aiger",
                                              binary=True))
        if design.name in BTOR2_TWINS:
            emit(base + ".btor2", export_design(design, "btor2"))

    for rel, text in CLASSICS.items():
        # Round through the reader+writer: validates the hand-written
        # model and lands the canonical serialization on disk (so the
        # .aig twin's ascii rendering is byte-identical to the .aag).
        model = read_aiger(text)
        emit(rel, write_aiger_ascii(model))
        if rel.endswith("toggle_safe.aag"):
            emit(rel[:-4] + ".aig", write_aiger_binary(model))
    return written


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--corpus-dir", default=str(REPO_ROOT / "corpus"),
                        help="output directory (default: corpus/)")
    args = parser.parse_args(argv)
    corpus_dir = Path(args.corpus_dir)
    written = regenerate(corpus_dir)
    print(f"wrote {len(written)} corpus files under {corpus_dir}")
    for path in written:
        print(f"  {path.relative_to(corpus_dir)}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
