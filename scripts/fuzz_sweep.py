#!/usr/bin/env python3
"""Multi-seed differential-fuzz sweep (the weekly deep-fuzz driver).

Runs ``repro.qa.run_fuzz`` once per base seed, each with its own design
count and wall-clock budget, collecting every repro bundle under one
output directory.  Exits non-zero if any seed produced a disagreement —
the bundles are the bug report.

    python scripts/fuzz_sweep.py --seeds 0 1 2 3 --count 1500 \
        --budget 600 --out /tmp/deep-fuzz
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.qa import run_fuzz  # noqa: E402


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seeds", type=int, nargs="+", default=[0, 1, 2, 3])
    parser.add_argument("--count", type=int, default=1500,
                        help="designs per seed")
    parser.add_argument("--budget", type=float, default=600.0,
                        help="wall-clock budget per seed, seconds")
    parser.add_argument("--out", default="/tmp/deep-fuzz",
                        help="bundle output root (one subdir per seed)")
    args = parser.parse_args()

    total_designs = 0
    total_disagreements = 0
    for seed in args.seeds:
        out_dir = Path(args.out) / f"seed_{seed}"
        report = run_fuzz(seed=seed, count=args.count, budget=args.budget,
                          out_dir=out_dir)
        total_designs += report.designs_checked
        total_disagreements += report.disagreements
        cut = " (budget exhausted)" if report.budget_exhausted else ""
        print(f"seed {seed}: {report.designs_checked} designs in "
              f"{report.elapsed_seconds:.1f}s "
              f"({report.designs_per_second:.0f}/s), "
              f"{report.disagreements} disagreements{cut}")
        for record in report.records:
            print(f"  {record.design_name}: " + "; ".join(
                d.one_line() for d in record.disagreements))
            if record.bundle_dir:
                print(f"    bundle: {record.bundle_dir}")

    print(f"sweep total: {total_designs} designs, "
          f"{total_disagreements} disagreements")
    return 1 if total_disagreements else 0


if __name__ == "__main__":
    raise SystemExit(main())
